"""Tests for the hardware substrate (processors, transfers, noise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.hw import (
    NoiseModel,
    Platform,
    ProcessorKind,
    ProcessorModel,
    TransferModel,
    jetson_tx2,
    jetson_tx2_maxn,
    raspberry_pi3,
)
from repro.hw.presets import cpu_only
from repro.utils.rng import derive_rng


def cpu_model(**overrides):
    params = dict(
        name="cpu", kind=ProcessorKind.CPU, peak_gflops=16.0,
        mem_bandwidth_gbs=8.0, overhead_ms=0.001,
    )
    params.update(overrides)
    return ProcessorModel(**params)


class TestProcessorModel:
    def test_compute_time(self):
        proc = cpu_model()
        # 16 GFLOP at full efficiency on 16 GFLOP/s = 1 s = 1000 ms.
        assert proc.compute_ms(16e9, 1.0) == pytest.approx(1000.0)

    def test_memory_time(self):
        proc = cpu_model()
        assert proc.memory_ms(8e9, 1.0) == pytest.approx(1000.0)

    def test_roofline_takes_max(self):
        proc = cpu_model()
        compute_bound = proc.roofline_ms(16e9, 8, 1.0, 1.0)
        memory_bound = proc.roofline_ms(16, 8e9, 1.0, 1.0)
        assert compute_bound == pytest.approx(1000.0 + proc.overhead_ms)
        assert memory_bound == pytest.approx(1000.0 + proc.overhead_ms)

    def test_roofline_adds_overhead_per_invocation(self):
        proc = cpu_model(overhead_ms=0.5)
        one = proc.roofline_ms(1e6, 1e3, 1.0, 1.0, invocations=1)
        two = proc.roofline_ms(1e6, 1e3, 1.0, 1.0, invocations=2)
        assert two - one == pytest.approx(0.5)

    def test_lower_efficiency_is_slower(self):
        proc = cpu_model()
        assert proc.compute_ms(1e9, 0.5) > proc.compute_ms(1e9, 1.0)

    @pytest.mark.parametrize("eff", [0.0, -1.0, 1.5])
    def test_bad_efficiency_rejected(self, eff):
        with pytest.raises(PlatformError):
            cpu_model().compute_ms(1e9, eff)

    def test_negative_flops_rejected(self):
        with pytest.raises(PlatformError):
            cpu_model().compute_ms(-1.0, 1.0)

    def test_invalid_peak_rejected(self):
        with pytest.raises(PlatformError):
            cpu_model(peak_gflops=0.0)

    def test_str_mentions_name(self):
        assert "cpu" in str(cpu_model())


class TestTransferModel:
    def test_latency_plus_bandwidth(self):
        t = TransferModel(latency_ms=0.1, bandwidth_gbs=1.0)
        # 1 GB at 1 GB/s = 1000 ms, plus latency.
        assert t.transfer_ms(1e9) == pytest.approx(1000.1)

    def test_zero_bytes_costs_latency(self):
        t = TransferModel(latency_ms=0.1, bandwidth_gbs=1.0)
        assert t.transfer_ms(0) == pytest.approx(0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(PlatformError):
            TransferModel(0.1, 1.0).transfer_ms(-1)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(PlatformError):
            TransferModel(latency_ms=0.0, bandwidth_gbs=0.0)


class TestNoiseModel:
    def test_zero_sigma_is_exact(self):
        rng = derive_rng(0, "t")
        assert NoiseModel(0.0).sample(5.0, rng) == 5.0

    def test_noise_is_positive(self):
        noise = NoiseModel(0.5)
        rng = derive_rng(0, "t")
        assert all(noise.sample(1.0, rng) > 0 for _ in range(100))

    def test_mean_one_property(self):
        noise = NoiseModel(0.1)
        rng = derive_rng(0, "t")
        samples = [noise.sample(1.0, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)

    def test_sample_mean_tighter_than_single(self):
        noise = NoiseModel(0.2)
        rng_a = derive_rng(0, "a")
        rng_b = derive_rng(0, "b")
        singles = [abs(noise.sample(1.0, rng_a) - 1.0) for _ in range(300)]
        means = [abs(noise.sample_mean(1.0, rng_b, 50) - 1.0) for _ in range(300)]
        assert np.mean(means) < np.mean(singles)

    def test_negative_sigma_rejected(self):
        with pytest.raises(PlatformError):
            NoiseModel(-0.1)

    def test_bad_repeats_rejected(self):
        with pytest.raises(PlatformError):
            NoiseModel(0.1).sample_mean(1.0, derive_rng(0, "t"), 0)

    def test_negative_true_ms_rejected(self):
        with pytest.raises(PlatformError):
            NoiseModel(0.1).sample(-1.0, derive_rng(0, "t"))


class TestPlatform:
    def test_tx2_has_both_processors(self):
        plat = jetson_tx2()
        assert plat.has(ProcessorKind.CPU) and plat.has(ProcessorKind.GPU)

    def test_tx2_gpu_faster_peak(self):
        plat = jetson_tx2()
        assert (
            plat.processor(ProcessorKind.GPU).peak_gflops
            > plat.cpu.peak_gflops * 10
        )

    def test_cpu_only_strips_gpu(self):
        plat = cpu_only(jetson_tx2())
        assert not plat.has(ProcessorKind.GPU)

    def test_cpu_only_transfer_raises(self):
        plat = cpu_only(jetson_tx2())
        with pytest.raises(PlatformError):
            plat.transfer_ms(1000)

    def test_missing_processor_lookup_raises(self):
        plat = raspberry_pi3()
        with pytest.raises(PlatformError):
            plat.processor(ProcessorKind.GPU)

    def test_gpu_without_transfer_rejected(self):
        gpu = ProcessorModel(
            name="gpu", kind=ProcessorKind.GPU, peak_gflops=100.0,
            mem_bandwidth_gbs=10.0, overhead_ms=0.01,
        )
        with pytest.raises(PlatformError):
            Platform(name="bad", processors=(cpu_model(), gpu), transfer=None)

    def test_cpu_required(self):
        gpu = ProcessorModel(
            name="gpu", kind=ProcessorKind.GPU, peak_gflops=100.0,
            mem_bandwidth_gbs=10.0, overhead_ms=0.01,
        )
        with pytest.raises(PlatformError):
            Platform(
                name="bad", processors=(gpu,),
                transfer=TransferModel(0.01, 1.0),
            )

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(PlatformError):
            Platform(name="bad", processors=(cpu_model(), cpu_model()))

    def test_maxn_is_faster_than_maxq(self):
        maxq = jetson_tx2()
        maxn = jetson_tx2_maxn()
        assert (
            maxn.processor(ProcessorKind.GPU).peak_gflops
            > maxq.processor(ProcessorKind.GPU).peak_gflops
        )

    def test_pi3_slower_than_tx2_cpu(self):
        assert raspberry_pi3().cpu.peak_gflops < jetson_tx2().cpu.peak_gflops

    def test_platform_str(self):
        assert "jetson_tx2" in str(jetson_tx2())
