"""Crash injection: SIGKILL mid-episode, recover from the checkpoint.

The anytime subsystem's strongest claim is that an *uncooperative*
death — a worker process SIGKILLed partway through a search, no
exception handler, no flush — loses at most ``checkpoint_every``
episodes of work and none of the answer's exactness.  Both execution
paths are killed here at a randomized point mid-run:

* the **local pool** — a ``ProcessPoolExecutor`` worker is SIGKILLed;
  the service survives the resulting ``BrokenProcessPool``, rebuilds
  the pool, persists the job's spooled checkpoint and requeues it with
  resume state attached;
* a **fleet worker** — a real ``repro work`` subprocess is SIGKILLed;
  its lease expires, and the job requeues carrying the newest
  heartbeat-delivered checkpoint for the next worker.

In both cases the finished job must be bitwise-identical to an
uninterrupted run, and completion must leave no orphan state behind
(no checkpoint rows in the store, no stray shared-memory segments).
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

from repro.core.config import SearchConfig
from repro.core.search import QSDNNSearch
from repro.runtime.campaign import CampaignJob, load_or_profile_lut, spool_paths
from repro.runtime.metrics import parse_samples
from repro.runtime.store import job_key
from repro.runtime.worker import FleetWorker, WorkerConfig

from tests.test_anytime_service import LiveAnytime

LONG = 20_000
EVERY = 100

#: Deterministically randomized kill points (seeded per test run id so
#: reruns explore different mid-episode offsets, while any single
#: failure is reproducible from the printed seed).
_SEED = int(os.environ.get("REPRO_CRASH_SEED", "1729"))


def _kill_delay(rng: random.Random) -> float:
    """Extra seconds to run past the first checkpoint before killing."""
    return rng.uniform(0.0, 0.3)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # platform without /dev/shm
        return set()


def _long_key() -> str:
    return job_key(CampaignJob(
        network="fig1_toy", mode="gpgpu", episodes=LONG, kind="search"
    ))


def _local_long():
    job = CampaignJob(
        network="fig1_toy", mode="gpgpu", episodes=LONG, kind="search"
    )
    lut, _ = load_or_profile_lut(job)
    return QSDNNSearch(lut, SearchConfig(episodes=LONG)).run()


def _long_body(**overrides):
    body = {"network": "fig1_toy", "mode": "gpgpu", "episodes": LONG}
    body.update(overrides)
    return body


class TestPoolWorkerCrash:
    def test_sigkilled_pool_worker_resumes_bitwise(self):
        rng = random.Random(_SEED)
        shm_before = _shm_entries()
        with LiveAnytime(workers=1) as live:
            record = live.client.submit(_long_body())[0]
            key = _long_key()
            # Wait for the first spooled checkpoint, then keep running
            # a random little longer — the kill lands mid-episode at an
            # arbitrary offset past a known-recoverable boundary.
            _, progress_path, _ = spool_paths(live.service._spool_dir, key)
            deadline = time.monotonic() + 30
            while not progress_path.exists():
                assert time.monotonic() < deadline, "no checkpoint spooled"
                time.sleep(0.01)
            time.sleep(_kill_delay(rng))
            pids = list(live.service._executor._processes)
            assert pids, "pool worker not spawned"
            os.kill(pids[0], signal.SIGKILL)

            # The service survives: the broken pool is rebuilt, the
            # spooled checkpoint persisted, and the job requeued with
            # resume state — same id, one more attempt, zero lost
            # exactness.
            final = live.client.wait(record["id"], timeout=120)
            assert final["state"] == "done"
            samples = parse_samples(live.client.metrics())
            assert samples["repro_jobs_requeued_total"][()] == 1.0
            assert samples["repro_jobs_resumed_total"][()] == 1.0
            assert samples["repro_checkpoints_written_total"][()] >= 1.0
            # No orphan rows: completion deleted the checkpoint.
            assert live.service.store.count_checkpoints() == 0
            # The rebuilt pool is live — a fresh job runs normally.
            again = live.client.submit(_long_body(episodes=150, seed=5))[0]
            assert live.client.wait(again["id"], timeout=120)["state"] == "done"
        assert _shm_entries() <= shm_before  # no leaked segments
        local = _local_long()
        assert final["best_ms"] == local.best_ms  # bitwise
        assert final["payload"]["curve_ms"] == local.curve_ms
        assert final["payload"]["best_assignments"] == local.best_assignments


class TestFleetWorkerCrash:
    def test_sigkilled_fleet_worker_resumes_bitwise(self):
        rng = random.Random(_SEED + 1)
        shm_before = _shm_entries()
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        with LiveAnytime(
            workers=0, lease_ttl_s=1.2, lease_check_s=0.1
        ) as live:
            record = live.client.submit(_long_body())[0]
            key = _long_key()
            victim = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "work",
                    "--server", live.url, "--name", "doomed",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            try:
                # Wait until a heartbeat has carried a checkpoint into
                # the store, run a random touch longer, then SIGKILL:
                # no graceful handler runs, the lease just goes quiet.
                deadline = time.monotonic() + 60
                while live.service.store.get_checkpoint(key) is None:
                    assert time.monotonic() < deadline, "no checkpoint carried"
                    assert victim.poll() is None, victim.stdout.read()
                    time.sleep(0.02)
                time.sleep(_kill_delay(rng))
            finally:
                victim.kill()
                victim.wait(timeout=30)

            # The reaper expires the silent lease and requeues the job
            # with the carried checkpoint attached.
            deadline = time.monotonic() + 30
            while live.client.job(record["id"])["state"] != "queued":
                assert time.monotonic() < deadline, "lease never expired"
                time.sleep(0.05)

            # A healthy worker picks it up and resumes mid-search.
            rescuer = FleetWorker(WorkerConfig(server=live.url))
            rescuer.register()
            assert rescuer.run_one() is True
            final = live.client.wait(record["id"], timeout=120)
            assert final["state"] == "done"
            assert final["attempts"] == 2  # the crashed grant + the rescue
            samples = parse_samples(live.client.metrics())
            expired = samples["repro_leases_expired_total"]
            assert sum(expired.values()) == 1.0  # labelled by worker
            assert samples["repro_jobs_resumed_total"][()] == 1.0
            assert live.service.store.count_checkpoints() == 0
        assert _shm_entries() <= shm_before
        local = _local_long()
        assert final["best_ms"] == local.best_ms  # bitwise
        assert final["payload"]["curve_ms"] == local.curve_ms
