"""Unit tests for shape inference."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.nn.layers import Layer
from repro.nn.shapes import infer_output_shape
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


def _conv(kernel=3, stride=1, padding=0, out_channels=8):
    return Layer(
        name="c", kind=LayerKind.CONV, inputs=("x",),
        kernel=kernel, stride=stride, padding=padding, out_channels=out_channels,
    )


class TestConvShapes:
    def test_same_padding(self):
        out = infer_output_shape(_conv(3, 1, 1), [TensorShape(3, 32, 32)])
        assert out == TensorShape(8, 32, 32)

    def test_valid_padding(self):
        out = infer_output_shape(_conv(5), [TensorShape(1, 28, 28)])
        assert out == TensorShape(8, 24, 24)

    def test_stride(self):
        out = infer_output_shape(_conv(11, 4, 0, 96), [TensorShape(3, 227, 227)])
        assert out == TensorShape(96, 55, 55)

    def test_window_too_large_raises(self):
        with pytest.raises(ShapeError):
            infer_output_shape(_conv(7), [TensorShape(3, 5, 5)])

    def test_rectangular_input(self):
        out = infer_output_shape(_conv(3, 2, 1), [TensorShape(3, 112, 96)])
        assert out == TensorShape(8, 56, 48)


class TestOtherShapes:
    def test_depthwise_keeps_channels(self):
        dw = Layer(name="d", kind=LayerKind.DEPTHWISE_CONV, inputs=("x",),
                   kernel=3, stride=2, padding=1)
        out = infer_output_shape(dw, [TensorShape(32, 112, 112)])
        assert out == TensorShape(32, 56, 56)

    def test_global_pool(self):
        gp = Layer(name="p", kind=LayerKind.POOL_AVG, inputs=("x",),
                   variant="global")
        assert infer_output_shape(gp, [TensorShape(1024, 7, 7)]) == TensorShape(1024, 1, 1)

    def test_fc_flattens(self):
        fc = Layer(name="f", kind=LayerKind.FULLY_CONNECTED, inputs=("x",),
                   out_channels=10)
        assert infer_output_shape(fc, [TensorShape(50, 4, 4)]) == TensorShape(10, 1, 1)

    def test_flatten(self):
        fl = Layer(name="fl", kind=LayerKind.FLATTEN, inputs=("x",))
        assert infer_output_shape(fl, [TensorShape(2, 3, 4)]) == TensorShape(24, 1, 1)

    def test_concat_sums_channels(self):
        cat = Layer(name="cat", kind=LayerKind.CONCAT, inputs=("a", "b"))
        out = infer_output_shape(
            cat, [TensorShape(64, 28, 28), TensorShape(32, 28, 28)]
        )
        assert out == TensorShape(96, 28, 28)

    def test_concat_spatial_mismatch_raises(self):
        cat = Layer(name="cat", kind=LayerKind.CONCAT, inputs=("a", "b"))
        with pytest.raises(ShapeError):
            infer_output_shape(
                cat, [TensorShape(64, 28, 28), TensorShape(32, 14, 14)]
            )

    def test_eltwise_requires_identical(self):
        add = Layer(name="add", kind=LayerKind.ELTWISE_ADD, inputs=("a", "b"))
        with pytest.raises(ShapeError):
            infer_output_shape(
                add, [TensorShape(64, 28, 28), TensorShape(32, 28, 28)]
            )

    def test_eltwise_passthrough(self):
        add = Layer(name="add", kind=LayerKind.ELTWISE_ADD, inputs=("a", "b"))
        shape = TensorShape(64, 28, 28)
        assert infer_output_shape(add, [shape, shape]) == shape

    @pytest.mark.parametrize(
        "kind", [LayerKind.RELU, LayerKind.BATCH_NORM, LayerKind.LRN,
                 LayerKind.SOFTMAX]
    )
    def test_elementwise_preserve_shape(self, kind):
        layer = Layer(name="e", kind=kind, inputs=("x",))
        shape = TensorShape(16, 8, 8)
        assert infer_output_shape(layer, [shape]) == shape

    def test_input_kind_rejected(self):
        inp = Layer(name="input2", kind=LayerKind.INPUT)
        with pytest.raises(ShapeError):
            infer_output_shape(inp, [])

    def test_wrong_arity_rejected(self):
        relu = Layer(name="r", kind=LayerKind.RELU, inputs=("x",))
        with pytest.raises(ShapeError):
            infer_output_shape(relu, [TensorShape(1, 1, 1), TensorShape(1, 1, 1)])
