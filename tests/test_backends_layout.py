"""Tests for layouts and conversion costs."""

from __future__ import annotations

import pytest

from repro.backends.layout import Layout, conversion_ms, layouts_equivalent
from repro.hw import jetson_tx2
from repro.nn.tensor import TensorShape


class TestLayoutEquivalence:
    def test_spatial_tensor_not_equivalent(self):
        assert not layouts_equivalent(TensorShape(8, 4, 4))

    def test_vector_equivalent(self):
        assert layouts_equivalent(TensorShape(1000, 1, 1))

    def test_single_channel_equivalent(self):
        assert layouts_equivalent(TensorShape(1, 28, 28))

    def test_1xN_spatial_not_equivalent(self):
        # height 1 but width > 1 with channels > 1: layouts still differ.
        assert not layouts_equivalent(TensorShape(4, 1, 8))


class TestConversionCost:
    def test_degenerate_tensor_free(self):
        plat = jetson_tx2()
        assert conversion_ms(TensorShape(1000, 1, 1), plat.cpu) == 0.0

    def test_cost_scales_with_size(self):
        plat = jetson_tx2()
        small = conversion_ms(TensorShape(8, 8, 8), plat.cpu)
        large = conversion_ms(TensorShape(8, 64, 64), plat.cpu)
        assert large > small

    def test_gpu_conversion_faster_for_large_tensors(self):
        plat = jetson_tx2()
        from repro.hw.processor import ProcessorKind

        gpu = plat.processor(ProcessorKind.GPU)
        shape = TensorShape(64, 56, 56)
        assert conversion_ms(shape, gpu) < conversion_ms(shape, plat.cpu)

    def test_includes_processor_overhead(self):
        plat = jetson_tx2()
        shape = TensorShape(2, 2, 2)  # tiny: overhead dominates
        assert conversion_ms(shape, plat.cpu) >= plat.cpu.overhead_ms

    def test_layout_enum_str(self):
        assert str(Layout.NCHW) == "nchw"
        assert str(Layout.NHWC) == "nhwc"
