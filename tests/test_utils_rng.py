"""Unit tests for the seeded RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.rng import RngStream, derive_rng, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(1, "a", "b") == spawn_seed(1, "a", "b")

    def test_different_names_differ(self):
        assert spawn_seed(1, "a") != spawn_seed(1, "b")

    def test_different_bases_differ(self):
        assert spawn_seed(1, "a") != spawn_seed(2, "a")

    def test_fits_in_uint64(self):
        assert 0 <= spawn_seed(123, "x") < 2**64

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigError):
            spawn_seed("nope", "a")  # type: ignore[arg-type]

    def test_name_path_order_matters(self):
        assert spawn_seed(1, "a", "b") != spawn_seed(1, "b", "a")


class TestDeriveRng:
    def test_same_stream_same_draws(self):
        a = derive_rng(7, "noise").normal(size=5)
        b = derive_rng(7, "noise").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_distinct_streams_distinct_draws(self):
        a = derive_rng(7, "noise").normal(size=5)
        b = derive_rng(7, "policy").normal(size=5)
        assert not np.allclose(a, b)


class TestRngStream:
    def test_child_reproducible(self):
        assert RngStream(7).child("x").normal() == RngStream(7).child("x").normal()

    def test_substream_nesting(self):
        direct = RngStream(7, "a").child("b").normal()
        nested = RngStream(7).substream("a").child("b").normal()
        assert direct == nested

    def test_children_independent_of_creation_order(self):
        s1 = RngStream(7)
        first = s1.child("one").normal()
        s2 = RngStream(7)
        _ = s2.child("zero").normal()  # extra stream must not disturb "one"
        assert first == s2.child("one").normal()

    def test_seed_property(self):
        assert RngStream(42).seed == 42

    def test_path_property(self):
        assert RngStream(42, "a", 1).path == ("a", 1)

    def test_rejects_non_int(self):
        with pytest.raises(ConfigError):
            RngStream(3.5)  # type: ignore[arg-type]

    def test_repr_mentions_seed(self):
        assert "42" in repr(RngStream(42))
