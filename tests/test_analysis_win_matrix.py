"""Tests for the library win-matrix analysis."""

from __future__ import annotations

import pytest

from repro import Mode, jetson_tx2
from repro.analysis.win_matrix import render_win_matrix, win_matrix
from repro.baselines import chain_dp
from repro.zoo import build_network


@pytest.fixture(scope="module")
def setup(request):
    from repro.analysis._cache import cached_lut

    platform = jetson_tx2()
    graph = build_network("lenet5")
    lut = cached_lut("lenet5", Mode.GPGPU, platform, seed=0)
    assignments = chain_dp(lut).best_assignments
    return graph, lut, assignments


class TestWinMatrix:
    def test_counts_sum_to_layer_count(self, setup):
        graph, lut, assignments = setup
        matrix = win_matrix(lut, assignments, graph)
        total = sum(
            count for row in matrix.values() for count in row.values()
        )
        assert total == len(graph.layers())

    def test_kinds_match_network(self, setup):
        graph, lut, assignments = setup
        matrix = win_matrix(lut, assignments, graph)
        expected = {str(l.kind) for l in graph.layers()}
        assert set(matrix) == expected

    def test_conv_count(self, setup):
        graph, lut, assignments = setup
        matrix = win_matrix(lut, assignments, graph)
        assert sum(matrix["conv"].values()) == 2  # LeNet has two convs

    def test_render_contains_all_kinds(self, setup):
        graph, lut, assignments = setup
        matrix = win_matrix(lut, assignments, graph)
        text = render_win_matrix(matrix, title="T")
        for kind in matrix:
            assert kind in text
        assert "total" in text

    def test_render_uses_dots_for_zero(self):
        matrix = {"conv": {"armcl": 2}, "relu": {"vanilla": 1}}
        text = render_win_matrix(matrix)
        assert "." in text
