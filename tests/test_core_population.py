"""The vectorized population substrate: validity invariants and ops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.population import (
    as_action_counts,
    categorical_sample,
    elite_distribution,
    elite_indices,
    floor_and_renormalize,
    mutate,
    random_population,
    tournament_select,
    uniform_crossover,
    uniform_distribution,
    validate_population,
)
from repro.errors import ScheduleError, SearchError


def _counts(data, max_layers=12, max_actions=9):
    layers = data.draw(st.integers(1, max_layers), label="layers")
    return np.array(
        data.draw(
            st.lists(
                st.integers(1, max_actions),
                min_size=layers,
                max_size=layers,
            ),
            label="counts",
        ),
        dtype=np.int64,
    )


class TestValidation:
    def test_rejects_empty_and_nonpositive_counts(self):
        with pytest.raises(SearchError):
            as_action_counts([])
        with pytest.raises(SearchError):
            as_action_counts([3, 0, 2])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ScheduleError):
            validate_population([2, 3], np.zeros((4, 5), dtype=np.int64))

    def test_rejects_out_of_range_genes(self):
        pop = np.array([[0, 1], [1, 3]], dtype=np.int64)
        with pytest.raises(ScheduleError):
            validate_population([2, 3], pop)
        pop = np.array([[0, -1]], dtype=np.int64)
        with pytest.raises(ScheduleError):
            validate_population([2, 3], pop)


class TestOpsStayValid:
    """Every operation preserves per-layer index validity (Hypothesis)."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_mutate_crossover_valid(self, data):
        counts = _counts(data)
        seed = data.draw(st.integers(0, 999), label="seed")
        rate = data.draw(st.floats(0.0, 1.0), label="rate")
        rng = np.random.default_rng(seed)
        pop = random_population(counts, rng, size=data.draw(st.integers(1, 20)))
        validate_population(counts, pop)
        mutated = mutate(pop, counts, rng, rate)
        validate_population(counts, mutated)
        crossed = uniform_crossover(pop, mutated, rng)
        validate_population(counts, crossed)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_categorical_sample_valid(self, data):
        counts = _counts(data)
        seed = data.draw(st.integers(0, 999), label="seed")
        rng = np.random.default_rng(seed)
        probs = uniform_distribution(counts)
        pop = categorical_sample(probs, counts, rng, data.draw(st.integers(1, 30)))
        validate_population(counts, pop)
        # A floored/renormalized elite re-fit still samples valid.
        elite = elite_indices(rng.random(len(pop)), max(1, len(pop) // 4))
        freq = elite_distribution(pop, counts, elite)
        refit = floor_and_renormalize(0.7 * freq + 0.3 * probs, counts, 1e-3)
        assert np.allclose(refit.sum(axis=1), 1.0)
        validate_population(counts, categorical_sample(refit, counts, rng, 16))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_degenerate_distribution_still_valid(self, data):
        """All mass on one action per layer: every draw is that action."""
        counts = _counts(data)
        rng = np.random.default_rng(data.draw(st.integers(0, 999)))
        winners = rng.integers(0, counts)
        probs = np.zeros((counts.size, int(counts.max())))
        probs[np.arange(counts.size), winners] = 1.0
        pop = categorical_sample(probs, counts, rng, 25)
        assert (pop == winners[None, :]).all()


class TestSelection:
    def test_elite_indices_stable_best_first(self):
        fitness = np.array([3.0, 1.0, 2.0, 1.0])
        assert elite_indices(fitness, 3).tolist() == [1, 3, 2]
        with pytest.raises(SearchError):
            elite_indices(fitness, 5)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_tournament_prefers_fitter(self, data):
        size = data.draw(st.integers(2, 30), label="size")
        rng = np.random.default_rng(data.draw(st.integers(0, 999)))
        fitness = rng.random(size) * 100.0
        winners = tournament_select(fitness, rng, rounds=200, tournament=3)
        assert winners.shape == (200,)
        assert winners.min() >= 0 and winners.max() < size
        # Winners are no worse than the population mean on average.
        assert fitness[winners].mean() <= fitness.mean() + 1e-9

    def test_tournament_of_one_is_uniform_draw(self):
        rng = np.random.default_rng(0)
        fitness = np.array([5.0, 1.0])
        winners = tournament_select(fitness, rng, rounds=500, tournament=1)
        # Both individuals appear: no selection pressure at size 1.
        assert set(winners.tolist()) == {0, 1}

    def test_uniform_distribution_masses(self):
        probs = uniform_distribution([2, 4, 1])
        assert probs.shape == (3, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs[0, 2] == 0.0 and probs[2, 1] == 0.0
        assert probs[0, 0] == pytest.approx(0.5)
