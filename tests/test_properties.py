"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import brute_force, chain_dp, pbqp_solve, random_search
from repro.core import QSDNNSearch, SearchConfig
from repro.core.epsilon import EpsilonSchedule
from repro.core.qtable import QTable
from repro.engine.lut import LatencyTable
from repro.hw.noise import NoiseModel
from repro.nn.layers import Layer
from repro.nn.shapes import infer_output_shape
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind
from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.stats import running_min

from tests.helpers import synthetic_chain_lut

# -- strategies ---------------------------------------------------------------

small_lut = st.builds(
    synthetic_chain_lut,
    num_layers=st.integers(min_value=2, max_value=6),
    num_actions=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)

chain_lut = st.builds(
    synthetic_chain_lut,
    num_layers=st.integers(min_value=2, max_value=25),
    num_actions=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


# -- exactness properties ------------------------------------------------------


class TestSolverProperties:
    @given(lut=small_lut)
    @settings(max_examples=25, deadline=None)
    def test_chain_dp_equals_brute_force(self, lut: LatencyTable):
        assert chain_dp(lut).best_ms == pytest.approx(
            brute_force(lut).best_ms, rel=1e-12
        )

    @given(lut=chain_lut)
    @settings(max_examples=25, deadline=None)
    def test_pbqp_equals_dp_on_chains(self, lut: LatencyTable):
        assert pbqp_solve(lut).best_ms == pytest.approx(
            chain_dp(lut).best_ms, rel=1e-12
        )

    @given(lut=chain_lut, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_dp_lower_bounds_random_schedules(self, lut: LatencyTable, seed: int):
        optimum = chain_dp(lut).best_ms
        rng = np.random.default_rng(seed)
        idx = lut.indexed()
        for _ in range(5):
            choices = np.array(
                [rng.integers(n) for n in idx.num_actions], dtype=np.int64
            )
            assert optimum <= idx.total_ms(choices) + 1e-9

    @given(lut=chain_lut, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_rs_never_beats_dp(self, lut: LatencyTable, seed: int):
        optimum = chain_dp(lut).best_ms
        rs = random_search(lut, episodes=50, seed=seed)
        assert optimum <= rs.best_ms + 1e-9

    @given(lut=small_lut, seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_qsdnn_never_beats_brute_force(self, lut: LatencyTable, seed: int):
        exact = brute_force(lut).best_ms
        rl = QSDNNSearch(lut, SearchConfig(episodes=60, seed=seed)).run()
        assert exact <= rl.best_ms + 1e-9

    @given(lut=chain_lut)
    @settings(max_examples=15, deadline=None)
    def test_schedule_time_consistency(self, lut: LatencyTable):
        result = pbqp_solve(lut)
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )


# -- search bookkeeping properties ---------------------------------------------


class TestSearchProperties:
    @given(
        lut=small_lut,
        episodes=st.integers(min_value=20, max_value=120),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_best_never_above_curve_min(self, lut, episodes, seed):
        """The reported best is the curve minimum, improved (never
        worsened) by the final polish sweeps."""
        result = QSDNNSearch(
            lut, SearchConfig(episodes=episodes, seed=seed)
        ).run()
        assert result.best_ms <= min(result.curve_ms) + 1e-9

    @given(
        lut=small_lut,
        episodes=st.integers(min_value=20, max_value=120),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_unpolished_best_is_min_of_curve(self, lut, episodes, seed):
        result = QSDNNSearch(
            lut, SearchConfig(episodes=episodes, seed=seed, polish_sweeps=0)
        ).run()
        assert result.best_ms == pytest.approx(min(result.curve_ms))

    @given(
        lut=small_lut,
        episodes=st.integers(min_value=20, max_value=100),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_reported_assignment_matches_best(self, lut, episodes, seed):
        result = QSDNNSearch(
            lut, SearchConfig(episodes=episodes, seed=seed)
        ).run()
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )

    @given(values=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1))
    def test_running_min_properties(self, values):
        curve = running_min(values)
        assert len(curve) == len(values)
        assert curve[-1] == min(values)
        assert all(a >= b for a, b in zip(curve, curve[1:]))


# -- epsilon schedule properties --------------------------------------------------


class TestEpsilonProperties:
    @given(total=st.integers(min_value=20, max_value=5000))
    def test_paper_schedule_covers_exactly(self, total):
        sched = EpsilonSchedule.paper(total)
        assert sched.total_episodes == total
        trace = sched.trace()
        assert len(trace) == total
        assert all(0.0 <= e <= 1.0 for e in trace)
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    @given(total=st.integers(min_value=20, max_value=5000))
    def test_half_explores(self, total):
        sched = EpsilonSchedule.paper(total)
        explore = sum(1 for e in sched.trace() if e == 1.0)
        assert explore == total // 2


# -- Q table properties -------------------------------------------------------------


class TestQTableProperties:
    @given(
        rewards=st.lists(
            st.floats(min_value=-100, max_value=0), min_size=1, max_size=50
        )
    )
    def test_q_bounded_by_reward_range(self, rewards):
        """With gamma < 1 and rewards in [-100, 0], Q stays in
        [-100 / (1 - gamma), 0]."""
        q = QTable([2, 2], learning_rate=0.5, discount=0.9)
        for i, r in enumerate(rewards):
            q.update(i % 2, 0, i % 2, r)
        bound = -100 / (1 - 0.9) - 1e-9
        for layer in range(2):
            for prev in range(q.row_sizes[layer]):
                for value in q.q_values(layer, prev):
                    assert bound <= value <= 0.0

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_greedy_rollout_is_valid_path(self, seed):
        rng = np.random.default_rng(seed)
        sizes = [int(rng.integers(1, 5)) for _ in range(4)]
        q = QTable(sizes, learning_rate=0.1, discount=0.9)
        rollout = q.greedy_rollout()
        assert len(rollout) == 4
        for choice, n in zip(rollout, sizes):
            assert 0 <= choice < n


# -- infrastructure properties ----------------------------------------------------------


class TestInfraProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        names=st.lists(st.text(max_size=8), min_size=1, max_size=3),
    )
    def test_spawn_seed_stable_and_in_range(self, seed, names):
        a = spawn_seed(seed, *names)
        b = spawn_seed(seed, *names)
        assert a == b and 0 <= a < 2**64

    @given(
        sigma=st.floats(min_value=0.001, max_value=0.5),
        true_ms=st.floats(min_value=1e-6, max_value=1e6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_noise_positive(self, sigma, true_ms, seed):
        noise = NoiseModel(sigma)
        assert noise.sample(true_ms, derive_rng(seed, "n")) > 0

    @given(
        c=st.integers(min_value=1, max_value=64),
        h=st.integers(min_value=3, max_value=64),
        w=st.integers(min_value=3, max_value=64),
        k=st.integers(min_value=1, max_value=3),
        s=st.integers(min_value=1, max_value=3),
        p=st.integers(min_value=0, max_value=2),
        out=st.integers(min_value=1, max_value=32),
    )
    def test_conv_shape_inference_consistent(self, c, h, w, k, s, p, out):
        layer = Layer(
            name="c", kind=LayerKind.CONV, inputs=("x",),
            kernel=k, stride=s, padding=p, out_channels=out,
        )
        shape = infer_output_shape(layer, [TensorShape(c, h, w)])
        assert shape.channels == out
        assert shape.height == (h + 2 * p - k) // s + 1
        assert shape.width == (w + 2 * p - k) // s + 1
        assert shape.height >= 1 and shape.width >= 1
