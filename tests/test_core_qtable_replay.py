"""Tests for the Q table (eq. 2) and the experience-replay buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qtable import QTable
from repro.core.replay import ReplayBuffer, Transition
from repro.errors import SearchError
from repro.utils.rng import derive_rng


class TestQTableUpdate:
    def test_single_update_matches_eq2(self):
        q = QTable([2, 2], learning_rate=0.05, discount=0.9)
        new = q.update(0, 0, 1, reward=-3.0)
        # Q starts at 0; next-state max is 0 -> target = -3.
        assert new == pytest.approx(0.05 * -3.0)

    def test_bootstrap_from_next_state(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        q.update(1, 1, 0, reward=-1.0)  # Q[1][1,0] = -1
        q.update(1, 1, 1, reward=-5.0)  # Q[1][1,1] = -5
        new = q.update(0, 0, 1, reward=-2.0)
        # next_best = max Q[1][1] = -1 -> target = -2 + 0.9*(-1).
        assert new == pytest.approx(-2.0 - 0.9)

    def test_terminal_layer_has_zero_bootstrap(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        new = q.update(1, 0, 1, reward=-4.0)
        assert new == pytest.approx(-4.0)

    def test_update_is_exponential_average(self):
        q = QTable([2], learning_rate=0.5, discount=0.9)
        q.update(0, 0, 0, reward=-2.0)  # -> -1.0
        new = q.update(0, 0, 0, reward=-2.0)  # -> -1.5
        assert new == pytest.approx(-1.5)

    def test_greedy_action_picks_max(self):
        q = QTable([3], learning_rate=1.0, discount=0.9)
        q.update(0, 0, 0, reward=-5.0)
        q.update(0, 0, 1, reward=-1.0)
        q.update(0, 0, 2, reward=-3.0)
        assert q.greedy_action(0, 0) == 1

    def test_greedy_rollout_follows_chain(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        q.update(0, 0, 1, reward=1.0)
        q.update(1, 1, 0, reward=1.0)
        assert q.greedy_rollout() == [1, 0]

    def test_best_value(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        q.update(1, 0, 1, reward=-2.0)
        assert q.best_value(1, 0) == pytest.approx(-0.0)
        q.update(1, 0, 0, reward=3.0)
        assert q.best_value(1, 0) == pytest.approx(3.0)

    def test_best_value_past_terminal_is_zero(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        assert q.best_value(2, 0) == 0.0

    def test_explicit_next_row_bootstrap(self):
        """DAG semantics: the successor row need not equal the action."""
        q = QTable([2, 3], learning_rate=1.0, discount=0.9,
                   row_sizes=[1, 2])
        q.update(1, 0, 0, reward=-3.0)
        q.update(1, 0, 1, reward=-2.0)
        q.update(1, 0, 2, reward=-1.0)  # row 0 of layer 1: [-3, -2, -1]
        new = q.update(0, 0, 1, reward=-2.0, next_row=0)
        assert new == pytest.approx(-2.0 + 0.9 * -1.0)

    def test_custom_row_sizes(self):
        q = QTable([3, 3], learning_rate=0.5, discount=0.9, row_sizes=[1, 1])
        q.update(1, 0, 2, reward=-4.0)
        assert q.greedy_action(1, 0) in range(3)

    def test_bad_row_sizes_rejected(self):
        with pytest.raises(SearchError):
            QTable([2, 2], 0.1, 0.9, row_sizes=[1])
        with pytest.raises(SearchError):
            QTable([2, 2], 0.1, 0.9, row_sizes=[1, 0])

    def test_first_visit_bootstrap_writes_target(self):
        q = QTable([2], learning_rate=0.05, discount=0.9,
                   first_visit_bootstrap=True)
        new = q.update(0, 0, 0, reward=-7.0)
        assert new == pytest.approx(-7.0)  # alpha = 1 on first visit
        new = q.update(0, 0, 0, reward=-9.0)
        assert new == pytest.approx(-7.0 * 0.95 + 0.05 * -9.0)

    def test_bootstrap_greedy_prefers_visited(self):
        q = QTable([2], learning_rate=1.0, discount=0.9,
                   first_visit_bootstrap=True)
        q.update(0, 0, 1, reward=-5.0)
        # Action 0 is unvisited (Q=0 > -5) but greedy must pick 1.
        assert q.greedy_action(0, 0) == 1

    def test_greedy_rollout_with_parents(self):
        # Layer 2's parent is layer 0 (a branch join), not layer 1.
        q = QTable([2, 2, 2], learning_rate=1.0, discount=0.9,
                   row_sizes=[1, 2, 2])
        q.update(0, 0, 1, reward=1.0)   # layer 0 picks 1
        q.update(1, 1, 0, reward=1.0)   # layer 1 (row=choice@0=1) picks 0
        q.update(2, 1, 1, reward=1.0)   # layer 2 keyed on layer 0's choice
        rollout = q.greedy_rollout(parents=[-1, 0, 0])
        assert rollout == [1, 0, 1]

    def test_copy_is_independent(self):
        q = QTable([2, 2], learning_rate=1.0, discount=0.9)
        clone = q.copy()
        q.update(0, 0, 0, reward=-1.0)
        assert clone.q_values(0, 0)[0] == 0.0

    def test_len(self):
        assert len(QTable([2, 3, 4], 0.1, 0.9)) == 3


class TestQTableValidation:
    def test_empty_layers_rejected(self):
        with pytest.raises(SearchError):
            QTable([], 0.1, 0.9)

    def test_zero_actions_rejected(self):
        with pytest.raises(SearchError):
            QTable([2, 0], 0.1, 0.9)

    def test_bad_learning_rate(self):
        with pytest.raises(SearchError):
            QTable([2], 0.0, 0.9)

    def test_bad_discount(self):
        with pytest.raises(SearchError):
            QTable([2], 0.1, 1.5)


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(capacity=4)
        for i in range(3):
            buf.push(Transition(0, 0, 0, float(-i)))
        assert len(buf) == 3

    def test_fifo_eviction(self):
        buf = ReplayBuffer(capacity=2)
        buf.push(Transition(0, 0, 0, -1.0))
        buf.push(Transition(0, 0, 1, -2.0))
        buf.push(Transition(0, 0, 0, -3.0))  # evicts the first
        assert len(buf) == 2
        rewards = {t.reward for t in buf.transitions()}
        assert rewards == {-2.0, -3.0}

    def test_replay_applies_all(self):
        buf = ReplayBuffer(capacity=8)
        q = QTable([2, 2], learning_rate=0.1, discount=0.9)
        for _ in range(5):
            buf.push(Transition(0, 0, 1, -1.0))
        applied = buf.replay(q, derive_rng(0, "r"))
        assert applied == 5
        assert q.q_values(0, 0)[1] < 0

    def test_replay_empty_is_noop(self):
        buf = ReplayBuffer()
        q = QTable([2], learning_rate=0.1, discount=0.9)
        assert buf.replay(q, derive_rng(0, "r")) == 0

    def test_default_capacity_is_paper_128(self):
        assert ReplayBuffer().capacity == 128

    def test_clear(self):
        buf = ReplayBuffer(capacity=2)
        buf.push(Transition(0, 0, 0, -1.0))
        buf.clear()
        assert len(buf) == 0

    def test_bad_capacity(self):
        with pytest.raises(SearchError):
            ReplayBuffer(capacity=0)

    def test_replay_moves_q_toward_reward(self):
        buf = ReplayBuffer(capacity=128)
        q = QTable([2], learning_rate=0.05, discount=0.9)
        for _ in range(128):
            buf.push(Transition(0, 0, 0, -10.0))
        buf.replay(q, derive_rng(1, "r"))
        # After 128 replays of the same reward, Q approaches -10.
        assert q.q_values(0, 0)[0] == pytest.approx(
            -10.0 * (1 - (1 - 0.05) ** 128), rel=1e-6
        )
