"""Tests for the Table II / Fig. 4 / Fig. 5 analysis harnesses."""

from __future__ import annotations

import pytest

from repro import Mode, jetson_tx2
from repro.analysis import (
    compare_methods,
    fig4_learning_curve,
    fig5_rl_vs_rs,
    render_table2,
    run_table2_row,
)
from repro.analysis._cache import cached_lut, cached_table2_row, clear


@pytest.fixture(scope="module")
def tx2():
    return jetson_tx2()


@pytest.fixture(scope="module")
def lenet_row(tx2):
    return run_table2_row("lenet5", Mode.GPGPU, tx2, episodes=300, seed=0)


class TestTable2Row:
    def test_vanilla_slowest(self, lenet_row):
        assert all(
            lenet_row.vanilla_ms >= ms * 0.99
            for ms in lenet_row.library_ms.values()
        )

    def test_bsl_is_min_of_libraries(self, lenet_row):
        non_vanilla = {
            k: v for k, v in lenet_row.library_ms.items() if k != "vanilla"
        }
        assert lenet_row.bsl_ms == min(non_vanilla.values())

    def test_qsdnn_beats_bsl(self, lenet_row):
        """Paper: 'QS-DNN outperforms all single-library implementations'."""
        assert lenet_row.qsdnn_vs_bsl > 1.0

    def test_qsdnn_beats_rs(self, lenet_row):
        assert lenet_row.rl_vs_rs >= 1.0

    def test_speedup_definitions(self, lenet_row):
        assert lenet_row.qsdnn_speedup == pytest.approx(
            lenet_row.vanilla_ms / lenet_row.qsdnn_ms
        )
        assert lenet_row.library_speedup("vanilla") == pytest.approx(1.0)

    def test_space_size_recorded(self, lenet_row):
        assert lenet_row.space_log10 > 3

    def test_multiple_libraries_used(self, lenet_row):
        assert len(lenet_row.qsdnn_libraries) >= 2


class TestRenderTable2:
    def test_renders_all_networks(self, lenet_row):
        out = render_table2([lenet_row], title="T")
        assert "lenet5" in out and "BSL" in out and "QS-DNN" in out

    def test_empty(self):
        assert render_table2([]) == "(no rows)"


class TestFig4:
    def test_curve_and_buckets(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        data = fig4_learning_curve(lut, episodes=200, seed=0)
        xs, ys = data.bucketed
        assert len(xs) == len(ys) == 20
        assert "Fig.4" in data.render(width=40, height=8)

    def test_exploitation_end_is_better_than_exploration(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        data = fig4_learning_curve(lut, episodes=400, seed=0)
        _, ys = data.bucketed
        assert ys[-1] < ys[0]


class TestFig5:
    def test_protocol_shape(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        data = fig5_rl_vs_rs(lut, budgets=[25, 100], runs=3, seed=0)
        assert data.budgets == [25, 100]
        assert len(data.rl_mean) == len(data.rs_mean) == 2

    def test_rl_at_least_matches_rs_at_large_budget(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        data = fig5_rl_vs_rs(lut, budgets=[300], runs=3, seed=0)
        assert data.ratio_at(300) >= 1.0

    def test_render(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        data = fig5_rl_vs_rs(lut, budgets=[25, 50], runs=2, seed=0)
        out = data.render(width=40, height=8)
        assert "RL" in out and "RS" in out


class TestCompareMethods:
    def test_all_methods_present(self, tx2):
        lut = cached_lut("lenet5", Mode.GPGPU, tx2)
        cmp = compare_methods(lut, episodes=300, seed=0)
        assert cmp.vanilla_ms > cmp.bsl_ms > 0
        assert cmp.optimal_ms is not None  # LeNet is a chain
        assert cmp.qsdnn_ms <= cmp.rs_ms
        assert "QS-DNN" in cmp.render()

    def test_optimal_none_for_branchy(self, tx2):
        lut = cached_lut("squeezenet_v1.1", Mode.GPGPU, tx2)
        cmp = compare_methods(lut, episodes=100, seed=0)
        assert cmp.optimal_ms is None


class TestCache:
    def test_lut_cached_identity(self, tx2):
        a = cached_lut("lenet5", Mode.GPGPU, tx2)
        b = cached_lut("lenet5", Mode.GPGPU, tx2)
        assert a is b

    def test_row_cached_identity(self, tx2):
        a = cached_table2_row("lenet5", Mode.GPGPU, tx2, episodes=100, seed=0)
        b = cached_table2_row("lenet5", Mode.GPGPU, tx2, episodes=100, seed=0)
        assert a is b

    def test_clear(self, tx2):
        a = cached_lut("lenet5", Mode.CPU, tx2)
        clear()
        b = cached_lut("lenet5", Mode.CPU, tx2)
        assert a is not b
