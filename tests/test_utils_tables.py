"""Unit tests for ASCII table and plot rendering."""

from __future__ import annotations

import pytest

from repro.utils.ascii_plot import line_plot
from repro.utils.tables import AsciiTable


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        t = AsciiTable(["net", "speedup"])
        t.add_row(["LeNet-5", "3.2x"])
        out = t.render()
        assert "net" in out and "LeNet-5" in out and "3.2x" in out

    def test_alignment_pads_columns(self):
        t = AsciiTable(["a", "b"])
        t.add_row(["xxxxxx", "1"])
        lines = t.render().splitlines()
        assert lines[0].index("b") == lines[2].index("1")

    def test_title_is_first_line(self):
        t = AsciiTable(["a"], title="My Table")
        assert t.render().splitlines()[0] == "My Table"

    def test_cells_are_stringified(self):
        t = AsciiTable(["a"])
        t.add_row([3.5])
        assert "3.5" in t.render()

    def test_wrong_arity_raises(self):
        t = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_rows_property_copies(self):
        t = AsciiTable(["a"])
        t.add_row(["x"])
        rows = t.rows
        rows[0][0] = "mutated"
        assert t.rows[0][0] == "x"

    def test_str_equals_render(self):
        t = AsciiTable(["a"])
        t.add_row(["1"])
        assert str(t) == t.render()


class TestLinePlot:
    def test_contains_markers(self):
        out = line_plot([0, 1, 2], [1.0, 5.0, 2.0], width=20, height=6)
        assert "*" in out

    def test_axis_labels(self):
        out = line_plot([0, 10], [0.0, 1.0], width=20, height=6,
                        xlabel="episode", ylabel="ms")
        assert "episode" in out and "ms" in out

    def test_title(self):
        out = line_plot([0, 1], [0, 1], width=20, height=6, title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_is_graceful(self):
        assert line_plot([], [], width=20, height=6) == "(empty plot)"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            line_plot([1, 2], [1.0], width=20, height=6)

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_plot([1], [1.0], width=2, height=2)

    def test_constant_series_does_not_crash(self):
        out = line_plot([0, 1, 2], [5.0, 5.0, 5.0], width=20, height=6)
        assert "*" in out

    def test_custom_marker(self):
        out = line_plot([0, 1], [0.0, 1.0], width=20, height=6, marker="o")
        assert "o" in out
