"""Edge-case tests for the Fig. 4 / Fig. 5 data structures."""

from __future__ import annotations

import pytest

from repro.analysis.curves import Fig4Data, Fig5Data
from repro.core import QSDNNSearch, SearchConfig

from tests.helpers import synthetic_chain_lut


def _result(episodes=35, seed=0):
    lut = synthetic_chain_lut(5, 3, seed=1)
    return QSDNNSearch(lut, SearchConfig(episodes=episodes, seed=seed)).run()


class TestFig4Buckets:
    def test_uneven_final_bucket(self):
        data = Fig4Data(result=_result(episodes=35), bucket=10)
        xs, ys = data.bucketed
        assert len(xs) == 4  # 10+10+10+5
        assert xs[-1] == pytest.approx(30 + 2.5)

    def test_bucket_of_one(self):
        result = _result(episodes=25)
        data = Fig4Data(result=result, bucket=1)
        xs, ys = data.bucketed
        assert ys == result.curve_ms

    def test_bucket_means_bound_by_extremes(self):
        result = _result(episodes=40)
        data = Fig4Data(result=result, bucket=8)
        _, ys = data.bucketed
        assert min(result.curve_ms) <= min(ys)
        assert max(ys) <= max(result.curve_ms)

    def test_render_handles_small_curve(self):
        data = Fig4Data(result=_result(episodes=25), bucket=5)
        assert "Fig.4" in data.render(width=30, height=6)


class TestFig5Accessors:
    def test_ratio_at_unknown_budget_raises(self):
        data = Fig5Data(network="x", budgets=[25, 50],
                        rl_mean=[2.0, 1.0], rs_mean=[3.0, 2.5])
        with pytest.raises(ValueError):
            data.ratio_at(100)

    def test_ratio_at(self):
        data = Fig5Data(network="x", budgets=[25],
                        rl_mean=[2.0], rs_mean=[3.0])
        assert data.ratio_at(25) == pytest.approx(1.5)
