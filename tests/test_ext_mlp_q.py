"""Tests for the MLP Q-network agent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import chain_dp, random_search
from repro.errors import ConfigError
from repro.ext.mlp_q import MLPQConfig, MLPQSearch, _MLP
from repro.utils.rng import derive_rng

from tests.helpers import synthetic_chain_lut


class TestMLP:
    def test_forward_shapes(self):
        net = _MLP(dim=5, hidden=8, rng=derive_rng(0, "t"))
        value, hidden = net.forward(np.ones(5))
        assert isinstance(value, float)
        assert hidden.shape == (8,)

    def test_sgd_reduces_error(self):
        net = _MLP(dim=3, hidden=16, rng=derive_rng(1, "t"))
        phi = np.array([1.0, -0.5, 2.0])
        target = -7.0
        before = abs(net.predict(phi) - target)
        for _ in range(200):
            net.sgd_step(phi, target, lr=0.05)
        after = abs(net.predict(phi) - target)
        assert after < before * 0.1

    def test_can_fit_xor_like_interaction(self):
        """A linear model cannot fit XOR; the MLP must."""
        net = _MLP(dim=2, hidden=16, rng=derive_rng(2, "t"))
        data = [
            (np.array([0.0, 0.0]), 0.0),
            (np.array([0.0, 1.0]), 1.0),
            (np.array([1.0, 0.0]), 1.0),
            (np.array([1.0, 1.0]), 0.0),
        ]
        for _ in range(3000):
            for phi, target in data:
                net.sgd_step(phi, target, lr=0.05)
        errors = [abs(net.predict(phi) - target) for phi, target in data]
        assert max(errors) < 0.25


class TestMLPQConfig:
    @pytest.mark.parametrize("field,value", [
        ("episodes", 0),
        ("hidden_units", 0),
        ("learning_rate", 0.0),
        ("discount", -0.5),
        ("polish_sweeps", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            MLPQConfig(**{field: value})


class TestMLPQSearch:
    def test_runs_and_returns_valid_schedule(self):
        lut = synthetic_chain_lut(8, 4, seed=1)
        result = MLPQSearch(lut, MLPQConfig(episodes=150, seed=0)).run()
        assert result.method == "mlp-q"
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )

    def test_beats_random_search(self):
        lut = synthetic_chain_lut(12, 5, seed=2)
        mlp = MLPQSearch(
            lut, MLPQConfig(episodes=300, seed=0, polish_sweeps=0)
        ).run()
        rs = random_search(lut, episodes=300, seed=0)
        assert mlp.best_ms <= rs.best_ms

    def test_reasonable_on_real_network(self, lenet_lut_gpgpu):
        result = MLPQSearch(
            lenet_lut_gpgpu, MLPQConfig(episodes=300, seed=0)
        ).run()
        optimum = chain_dp(lenet_lut_gpgpu).best_ms
        assert result.best_ms <= optimum * 1.5

    def test_deterministic(self):
        lut = synthetic_chain_lut(6, 3, seed=3)
        a = MLPQSearch(lut, MLPQConfig(episodes=100, seed=5)).run()
        b = MLPQSearch(lut, MLPQConfig(episodes=100, seed=5)).run()
        assert a.best_ms == b.best_ms
        assert a.best_assignments == b.best_assignments
