"""The tiered, sharded LUT cache: keys, tiers, chaining, exactness.

The acceptance property of the whole subsystem is at the bottom: a LUT
resolved from *each* tier (local shard, remote fetch, profile-on-miss)
prices bitwise-identically through the :class:`CostEngine`, and a
client with an empty local tier riding a populated shard server runs
a whole campaign with **zero profiling passes**.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import __version__
from repro.core.config import SearchConfig
from repro.core.search import QSDNNSearch
from repro.errors import LutCacheError, ServiceError
from repro.runtime.campaign import (
    CampaignJob,
    execute_job,
    load_or_profile_lut,
    lut_cache_path,
    profile_lut,
)
from repro.runtime.lutcache import (
    LocalTier,
    LutKey,
    RemoteTier,
    TieredLutCache,
    open_cache,
    validate_entry,
)

from tests.test_runtime_service import LiveService

EPISODES = 120
JOB = CampaignJob(network="fig1_toy", mode="gpgpu", episodes=EPISODES)


class TestLutKey:
    def test_from_job_carries_all_identity_fields(self):
        key = LutKey.from_job(JOB)
        assert key.platform == "jetson_tx2"
        assert key.network == "fig1_toy"
        assert key.mode == "gpgpu"
        assert key.seed == 0 and key.repeats == 50
        assert key.version == __version__

    def test_shard_and_filename(self):
        key = LutKey.from_job(JOB, version="9.9")
        assert key.shard == "jetson_tx2/fig1_toy"
        assert key.filename == "gpgpu__seed0__r50__v9.9.json"
        assert key.legacy_filename == (
            "jetson_tx2__fig1_toy__gpgpu__seed0__r50__v9.9.json"
        )

    def test_entry_name_round_trip(self):
        key = LutKey.from_job(JOB)
        parsed = LutKey.from_entry_name(
            key.platform, key.network, key.filename
        )
        assert parsed == key

    @pytest.mark.parametrize(
        "name", ["index.json", "notes.txt", "x.json", "a__b__c.json"]
    )
    def test_non_entry_names_parse_to_none(self, name):
        assert LutKey.from_entry_name("p", "n", name) is None

    @pytest.mark.parametrize("bad", ["../evil", "a/b", "", ".hidden"])
    def test_traversal_segments_rejected(self, bad):
        with pytest.raises(LutCacheError):
            LutKey(
                platform=bad, network="n", mode="cpu",
                seed=0, repeats=50, version="1",
            )

    @pytest.mark.parametrize("bad", ["../../escape", "a/b", "..", ""])
    def test_traversal_version_rejected(self, bad):
        """The version is name-forming too — an unvalidated version
        from the HTTP query would escape the cache root."""
        with pytest.raises(LutCacheError):
            LutKey(
                platform="p", network="n", mode="cpu",
                seed=0, repeats=50, version=bad,
            )


class TestValidateEntry:
    def test_accepts_matching_entry(self):
        lut = profile_lut(JOB)
        key = LutKey.from_job(JOB)
        clone = validate_entry(lut.to_json(), key)
        assert clone.graph_name == lut.graph_name

    def test_rejects_garbage(self):
        with pytest.raises(LutCacheError):
            validate_entry("not json", LutKey.from_job(JOB))

    def test_rejects_mislabeled_entry(self):
        """An entry whose identity fields disagree with its key would
        price a different scenario — it must never be served."""
        lut = profile_lut(JOB)
        wrong = CampaignJob(network="fig1_toy", mode="cpu")
        with pytest.raises(LutCacheError, match="mismatches"):
            validate_entry(lut.to_json(), LutKey.from_job(wrong))


class TestLocalTier:
    def test_put_get_round_trip_in_shard_layout(self, tmp_path):
        tier = LocalTier(tmp_path)
        key = LutKey.from_job(JOB)
        text = profile_lut(JOB).to_json()
        tier.put(key, text)
        assert (tmp_path / "jetson_tx2" / "fig1_toy" / key.filename).exists()
        assert tier.get(key) == text

    def test_miss_is_none(self, tmp_path):
        assert LocalTier(tmp_path).get(LutKey.from_job(JOB)) is None

    def test_index_tracks_entries(self, tmp_path):
        tier = LocalTier(tmp_path)
        key = LutKey.from_job(JOB)
        tier.put(key, profile_lut(JOB).to_json())
        index = tier.shard_index("jetson_tx2", "fig1_toy")
        assert index["shard"] == "jetson_tx2/fig1_toy"
        assert key.filename in index["entries"]
        assert index["entries"][key.filename]["mode"] == "gpgpu"

    def test_legacy_flat_entry_read_and_migrated(self, tmp_path):
        """A pre-sharding cache directory keeps its hits: the flat file
        is read, then republished into the shard tree."""
        key = LutKey.from_job(JOB)
        text = profile_lut(JOB).to_json()
        (tmp_path / key.legacy_filename).write_text(text)
        tier = LocalTier(tmp_path)
        assert tier.get(key) == text
        assert tier.path_for(key).exists()  # migrated
        assert key in tier.keys()

    def test_stats_and_gc(self, tmp_path):
        tier = LocalTier(tmp_path)
        current = LutKey.from_job(JOB)
        stale = LutKey.from_job(JOB, version="0.0.1")
        text = profile_lut(JOB).to_json()
        tier.put(current, text)
        tier.put(stale, text)
        (tmp_path / "jetson_tx2" / "fig1_toy" / "dead.json.123.tmp").write_text("x")

        stats = tier.stats()
        assert len(stats) == 1 and stats[0].entries == 2
        assert stats[0].versions == {__version__, "0.0.1"}

        removed, reclaimed = tier.gc(keep_version=__version__)
        assert removed == 2 and reclaimed > 0
        assert tier.get(current) == text
        assert tier.get(stale) is None
        assert [k.version for k in tier.keys()] == [__version__]
        index = tier.shard_index("jetson_tx2", "fig1_toy")
        assert list(index["entries"]) == [current.filename]


class TestTieredChaining:
    """Chain mechanics with two local tiers (no network needed)."""

    def _profiler(self, counter):
        def run():
            counter.append(1)
            return profile_lut(JOB)

        return run

    def test_miss_profiles_and_writes_through_every_tier(self, tmp_path):
        near, far = LocalTier(tmp_path / "near"), LocalTier(tmp_path / "far")
        calls: list = []
        cache = TieredLutCache([near, far])
        resolution = cache.resolve(JOB, self._profiler(calls))
        assert calls == [1]
        assert not resolution.from_cache
        assert resolution.source == "profiled"
        key = LutKey.from_job(JOB)
        assert near.get(key) is not None and far.get(key) is not None

    def test_far_hit_fills_near_tier(self, tmp_path):
        near, far = LocalTier(tmp_path / "near"), LocalTier(tmp_path / "far")
        far.put(LutKey.from_job(JOB), profile_lut(JOB).to_json())
        calls: list = []
        cache = TieredLutCache([near, far])
        resolution = cache.resolve(JOB, self._profiler(calls))
        assert calls == []  # no profiling
        assert resolution.from_cache and resolution.source == far.name
        assert near.get(LutKey.from_job(JOB)) is not None  # filled forward

    def test_near_hit_stops_the_chain(self, tmp_path):
        near = LocalTier(tmp_path / "near")
        near.put(LutKey.from_job(JOB), profile_lut(JOB).to_json())
        exploding = RemoteTier("http://127.0.0.1:1")  # nothing listens
        calls: list = []
        resolution = TieredLutCache([near, exploding]).resolve(
            JOB, self._profiler(calls)
        )
        assert resolution.from_cache and calls == []

    def test_dead_remote_falls_through_to_profiling(self, tmp_path):
        near = LocalTier(tmp_path / "near")
        dead = RemoteTier("http://127.0.0.1:1")
        calls: list = []
        resolution = TieredLutCache([near, dead]).resolve(
            JOB, self._profiler(calls)
        )
        assert calls == [1] and not resolution.from_cache
        assert resolution.errors and "unreachable" in resolution.errors[0]
        # The local tier still got the write-through.
        assert near.get(LutKey.from_job(JOB)) is not None

    def test_malformed_remote_response_is_soft_too(self, tmp_path, monkeypatch):
        """A remote answering garbage (proxy HTML, half-closed stream)
        raises ValueError/HTTPException inside the client — the soft
        contract says that must fall through, not abort resolution."""
        near = LocalTier(tmp_path / "near")
        flaky = RemoteTier("http://127.0.0.1:1")

        def garbage(*args, **kwargs):
            raise ValueError("Expecting value: line 1 column 1 (char 0)")

        monkeypatch.setattr(flaky.client, "request", garbage)
        calls: list = []
        resolution = TieredLutCache([near, flaky]).resolve(
            JOB, self._profiler(calls)
        )
        assert calls == [1] and not resolution.from_cache
        assert resolution.errors and "unreachable" in resolution.errors[0]

    def test_open_cache_spellings(self, tmp_path):
        assert open_cache(None, None) is None
        local_only = open_cache(tmp_path)
        assert [type(t) for t in local_only.tiers] == [LocalTier]
        chained = open_cache(tmp_path, "http://127.0.0.1:1")
        assert [type(t) for t in chained.tiers] == [LocalTier, RemoteTier]
        multi = open_cache(None, ["http://a:1", "http://b:1"])
        assert len(multi.tiers) == 2


class TestRemoteTierAgainstLiveService:
    def test_fetch_publish_and_listing(self, tmp_path):
        server_dir = tmp_path / "hostA"
        LocalTier(server_dir).put(
            LutKey.from_job(JOB), profile_lut(JOB).to_json()
        )
        with LiveService(workers=0, cache_dir=str(server_dir)) as live:
            remote = RemoteTier(f"http://127.0.0.1:{live.service.port}")
            key = LutKey.from_job(JOB)
            text = remote.get(key)
            assert text is not None
            assert validate_entry(text, key).graph_name == "fig1_toy"
            # Miss: different seed.
            other = CampaignJob(network="fig1_toy", mode="gpgpu", seed=3)
            assert remote.get(LutKey.from_job(other)) is None
            # Push a second entry, then the listing shows both.
            remote.put(LutKey.from_job(other), profile_lut(other).to_json())
            assert len(remote.keys()) == 2
            assert lut_cache_path(server_dir, other).exists()

    def test_put_of_mislabeled_entry_is_rejected(self, tmp_path):
        with LiveService(workers=0, cache_dir=str(tmp_path / "srv")) as live:
            remote = RemoteTier(f"http://127.0.0.1:{live.service.port}")
            wrong_key = LutKey.from_job(
                CampaignJob(network="fig1_toy", mode="cpu")
            )
            with pytest.raises(LutCacheError, match="mismatches"):
                remote.put(wrong_key, profile_lut(JOB).to_json())

    def test_server_without_cache_dir_misses_and_refuses_put(self):
        with LiveService(workers=0) as live:
            remote = RemoteTier(f"http://127.0.0.1:{live.service.port}")
            assert remote.get(LutKey.from_job(JOB)) is None
            with pytest.raises(LutCacheError, match="503"):
                remote.put(LutKey.from_job(JOB), profile_lut(JOB).to_json())
            assert remote.keys() == []

    def test_get_requires_mode(self, tmp_path):
        with LiveService(workers=0, cache_dir=str(tmp_path)) as live:
            status, body = live.client.request(
                "GET", "/luts/jetson_tx2/fig1_toy"
            )
            assert status == 400 and "mode" in body["error"]

    def test_traversal_path_is_400(self, tmp_path):
        with LiveService(workers=0, cache_dir=str(tmp_path)) as live:
            status, body = live.client.request(
                "GET", "/luts/..%2F..%2Fetc/passwd?mode=cpu"
            )
            assert status in (400, 404)
            assert not (tmp_path / ".." / "..").resolve().joinpath(
                "passwd"
            ).exists()

    def test_traversal_version_is_400(self, tmp_path):
        """The version query parameter is name-forming: a traversal
        value must be rejected before it reaches the filesystem, on
        both GET and PUT."""
        cache_root = tmp_path / "srv"
        with LiveService(workers=0, cache_dir=str(cache_root)) as live:
            evil = "mode=cpu&version=..%2F..%2F..%2Fescape"
            status, body = live.client.request(
                "GET", f"/luts/jetson_tx2/fig1_toy?{evil}"
            )
            assert status == 400 and "version" in body["error"]
            status, body = live.client.request(
                "PUT",
                f"/luts/jetson_tx2/fig1_toy?{evil}",
                {"graph_name": "fig1_toy"},
            )
            assert status == 400 and "version" in body["error"]
        assert not (tmp_path / "escape.json").exists()
        assert not (tmp_path.parent / "escape.json").exists()


class TestExactnessAcrossTiers:
    """The acceptance property: every tier prices bitwise-identically."""

    def test_local_remote_and_fresh_profiles_price_bitwise_equal(
        self, tmp_path
    ):
        fresh = profile_lut(JOB)
        server_dir, client_dir = tmp_path / "hostA", tmp_path / "hostB"
        # Tier 1: local shard hit.
        local_lut, hit = load_or_profile_lut(JOB, server_dir)
        assert not hit
        local_again, hit = load_or_profile_lut(JOB, server_dir)
        assert hit
        with LiveService(workers=0, cache_dir=str(server_dir)) as live:
            url = f"http://127.0.0.1:{live.service.port}"
            # Tier 2: remote fetch into an empty local tier.
            remote_lut, remote_hit = load_or_profile_lut(
                JOB, client_dir, url
            )
        assert remote_hit

        engines = [
            lut.engine() for lut in (fresh, local_again, remote_lut)
        ]
        rng = np.random.default_rng(7)
        for _ in range(20):
            choices = np.array(
                [rng.integers(n) for n in fresh.indexed().num_actions],
                dtype=np.int64,
            )
            prices = {engine.price(choices) for engine in engines}
            assert len(prices) == 1  # bitwise identical

        config = SearchConfig(episodes=EPISODES)
        results = [
            QSDNNSearch(lut, config).run()
            for lut in (fresh, local_again, remote_lut)
        ]
        assert len({r.best_ms for r in results}) == 1
        assert results[0].curve_ms == results[1].curve_ms == results[2].curve_ms

    def test_remote_campaign_runs_zero_profiling_passes(
        self, tmp_path, monkeypatch
    ):
        """Two processes: a shard server (host A, populated) and this
        process (host B, empty local tier).  Host B's campaign must
        resolve every LUT remotely — profiling is forbidden outright
        via a monkeypatched profiler."""
        server_dir, client_dir = tmp_path / "hostA", tmp_path / "hostB"
        load_or_profile_lut(JOB, server_dir)  # host A pays the cost once
        with LiveService(workers=0, cache_dir=str(server_dir)) as live:
            url = f"http://127.0.0.1:{live.service.port}"

            def forbidden(job):
                raise AssertionError(
                    f"profiling pass attempted for {job.label}"
                )

            monkeypatch.setattr(
                "repro.runtime.campaign.profile_lut", forbidden
            )
            result = execute_job(
                CampaignJob(
                    network="fig1_toy", mode="gpgpu",
                    episodes=EPISODES, kind="search",
                ),
                cache_dir=client_dir,
                cache_remote=url,
            )
        assert result.lut_from_cache
        # And it matches the local search over the host-A profile.
        monkeypatch.undo()
        lut, _ = load_or_profile_lut(JOB, server_dir)
        local = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        assert result.payload.best_ms == local.best_ms


class TestCliLutCache:
    def test_push_then_prefetch_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        host_a = tmp_path / "hostA"
        host_b = tmp_path / "hostB"
        server_dir = tmp_path / "server"
        load_or_profile_lut(JOB, host_a)
        with LiveService(workers=0, cache_dir=str(server_dir)) as live:
            url = f"http://127.0.0.1:{live.service.port}"
            assert main([
                "lut-cache", "push", "--cache-dir", str(host_a),
                "--url", url,
            ]) == 0
            assert "1 entr(ies)" in capsys.readouterr().out
            assert lut_cache_path(server_dir, JOB).exists()
            assert main([
                "lut-cache", "prefetch", "--cache-dir", str(host_b),
                "--url", url,
            ]) == 0
            out = capsys.readouterr().out
            assert "1 fetched" in out
            assert lut_cache_path(host_b, JOB).exists()
            # Second prefetch: everything already local.
            assert main([
                "lut-cache", "prefetch", "--cache-dir", str(host_b),
                "--url", url,
            ]) == 0
            assert "0 fetched, 1 already local" in capsys.readouterr().out
        # The prefetched entry prices bitwise like the original.
        a, _ = load_or_profile_lut(JOB, host_a)
        b, hit = load_or_profile_lut(JOB, host_b)
        assert hit
        choices = np.zeros(len(a.engine()), dtype=np.int64)
        assert a.engine().price(choices) == b.engine().price(choices)

    def test_push_to_dead_server_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        load_or_profile_lut(JOB, tmp_path)
        assert main([
            "lut-cache", "push", "--cache-dir", str(tmp_path),
            "--url", "http://127.0.0.1:1",
        ]) == 1
        assert "failed" in capsys.readouterr().out

    def test_stats_and_gc_commands(self, tmp_path, capsys):
        from repro.cli import main

        load_or_profile_lut(JOB, tmp_path)
        stale = LutKey.from_job(JOB, version="0.0.1")
        LocalTier(tmp_path).put(stale, profile_lut(JOB).to_json())
        assert main(["lut-cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "jetson_tx2/fig1_toy" in out and "0.0.1" in out
        assert main(["lut-cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert main(["lut-cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "0.0.1" not in capsys.readouterr().out


class TestServiceErrorTaxonomy:
    def test_lutcache_error_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(LutCacheError, ReproError)
        assert not issubclass(LutCacheError, ServiceError)
