"""Anytime search over the service: live progress, preemption, resume.

Every test drives a real service over HTTP (event loop on a background
thread, stdlib client), mirroring the harnesses in
``test_runtime_service.py`` / ``test_runtime_fleet.py``.  Covered
here: SSE ``progress`` events arriving while the job is still
*running* (not the post-hoc curve replay), ``DELETE`` preempting a
running local-pool job into a persisted checkpoint, lease revocation
preempting a fleet job (sibling batch jobs requeued, the worker's next
heartbeat answering 409), and ``"resume": true`` resubmission
finishing bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.core.config import SearchConfig, ServiceConfig
from repro.core.search import QSDNNSearch
from repro.errors import LeaseExpiredError
from repro.runtime.campaign import CampaignJob, load_or_profile_lut
from repro.runtime.client import ServiceClient
from repro.runtime.metrics import parse_samples
from repro.runtime.service import CampaignService
from repro.runtime.store import job_key
from repro.runtime.worker import FleetWorker, WorkerConfig

#: Long enough (~2 s at the reference backend's episode rate) that the
#: job is reliably mid-flight when the test preempts or kills it.
LONG = 20_000
EVERY = 100


class LiveAnytime:
    """A service on a background event-loop thread (anytime configs)."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        overrides.setdefault("checkpoint_every", EVERY)
        overrides.setdefault("heartbeat_s", 0.05)
        self.config = ServiceConfig(**overrides)
        self.service = CampaignService(self.config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "LiveAnytime":
        self._thread.start()
        assert self._started.wait(10), "service failed to start"
        self.url = f"http://127.0.0.1:{self.service.port}"
        self.client = ServiceClient(self.url, timeout=60)
        return self

    def __exit__(self, *exc) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self.loop
            ).result(60)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(10)

    def raw(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=30
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, json.loads(raw) if raw else {}
        finally:
            conn.close()

    def wait_state(self, job_id: str, state: str, timeout: float = 60.0) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            record = self.client.job(job_id)
            if record["state"] == state:
                return record
            assert time.monotonic() < deadline, (
                f"job {job_id} stuck in {record['state']!r}, wanted {state!r}"
            )
            time.sleep(0.02)


def _long_body(**overrides):
    body = {"network": "fig1_toy", "mode": "gpgpu", "episodes": LONG}
    body.update(overrides)
    return body


def _local_long():
    job = CampaignJob(
        network="fig1_toy", mode="gpgpu", episodes=LONG, kind="search"
    )
    lut, _ = load_or_profile_lut(job)
    return QSDNNSearch(lut, SearchConfig(episodes=LONG)).run()


class TestLiveProgress:
    def test_progress_event_arrives_while_job_is_running(self):
        """Satellite contract: at least one SSE ``progress`` event is
        delivered while the job is still *running* — progress is live
        from in-loop checkpoints, not replayed after the fact."""
        with LiveAnytime() as live:
            record = live.client.submit(_long_body())[0]
            first = None
            for event, data in live.client.stream_progress(record["id"]):
                if event == "progress":
                    first = data
                    state = live.client.job(record["id"])["state"]
                    break
            assert first is not None, "stream ended without a progress event"
            assert state == "running"
            assert first["id"] == record["id"]
            assert 0 < first["episode"] < LONG
            assert first["episode"] % EVERY == 0
            assert first["best_ms"] > 0.0
            final = live.client.wait(record["id"], timeout=120)
            assert final["state"] == "done"

    def test_full_stream_interleaves_progress_with_status(self):
        with LiveAnytime() as live:
            record = live.client.submit(_long_body())[0]
            events = list(live.client.stream_progress(record["id"]))
        kinds = [event for event, _ in events]
        assert kinds[-1] == "done"
        progress = [data for event, data in events if event == "progress"]
        assert progress, "no live progress events on the stream"
        episodes = [p["episode"] for p in progress]
        assert episodes == sorted(episodes)  # monotone, no duplicates
        assert len(set(episodes)) == len(episodes)
        bests = [p["best_ms"] for p in progress]
        assert all(a >= b for a, b in zip(bests, bests[1:]))


class TestPreemptResume:
    def test_delete_preempts_running_job_then_resume_is_bitwise(self):
        with LiveAnytime() as live:
            record = live.client.submit(_long_body())[0]
            # Wait for the first in-flight checkpoint, proving the
            # spool holds a snapshot to preempt into.
            for event, _ in live.client.stream_progress(record["id"]):
                if event == "progress":
                    break
            status, body = live.raw("DELETE", f"/jobs/{record['id']}")
            assert status == 202
            assert body["preempting"] is True
            assert body["state"] == "running"  # lands cancelled async
            cancelled = live.wait_state(record["id"], "cancelled")
            assert "preempted at episode" in cancelled["error"]
            key = job_key(CampaignJob(**cancelled["job"]))
            stored = live.service.store.get_checkpoint(key)
            assert stored is not None
            assert 0 < stored.episode < LONG
            samples = parse_samples(live.client.metrics())
            assert samples["repro_jobs_preempted_total"][()] == 1.0
            assert samples["repro_checkpoints_written_total"][()] >= 1.0

            # Resubmission with resume picks the checkpoint up and the
            # finished run is bitwise an uninterrupted one.
            resumed = live.client.submit(_long_body(resume=True))[0]
            assert resumed["id"] != record["id"]
            final = live.client.wait(resumed["id"], timeout=120)
            assert final["state"] == "done"
            samples = parse_samples(live.client.metrics())
            assert samples["repro_jobs_resumed_total"][()] == 1.0
            # Completion hygiene: the checkpoint row is gone.
            assert live.service.store.get_checkpoint(key) is None
        local = _local_long()
        assert final["best_ms"] == local.best_ms  # bitwise
        assert final["payload"]["curve_ms"] == local.curve_ms
        assert final["payload"]["best_assignments"] == local.best_assignments

    def test_resume_without_checkpoint_runs_from_scratch(self):
        """``"resume": true`` with nothing persisted is not an error —
        the job simply starts at episode 0."""
        episodes = 150
        with LiveAnytime() as live:
            record = live.client.submit(
                _long_body(episodes=episodes, resume=True)
            )[0]
            final = live.client.wait(record["id"], timeout=120)
            assert final["state"] == "done"
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=episodes, kind="search"
        )
        lut, _ = load_or_profile_lut(job)
        local = QSDNNSearch(lut, SearchConfig(episodes=episodes)).run()
        assert final["best_ms"] == local.best_ms

    def test_resume_flag_must_be_boolean(self):
        with LiveAnytime(workers=0) as live:
            status, body = live.raw(
                "POST", "/jobs", _long_body(resume="yes")
            )
            assert status == 400
            assert "resume" in body["error"]

    def test_delete_running_without_checkpointing_conflicts(self):
        """With checkpointing disabled there is nothing to preempt
        into: DELETE on a running job keeps answering 409."""
        with LiveAnytime(checkpoint_every=0) as live:
            record = live.client.submit(_long_body(episodes=8000))[0]
            deadline = time.monotonic() + 30
            while live.client.job(record["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            status, body = live.raw("DELETE", f"/jobs/{record['id']}")
            assert status == 409
            assert "only queued jobs" in body["error"]
            assert live.client.wait(record["id"], timeout=120)["state"] == "done"


class TestFleetLeaseRevocation:
    def test_delete_revokes_lease_and_requeues_batch_siblings(self):
        """Preempting one fleet job revokes the whole lease: the
        worker's next heartbeat answers 409, the target is cancelled
        (checkpoint retained), and its innocent batch siblings go back
        to the queue rather than being discarded."""
        with LiveAnytime(workers=0) as live:
            grant = live.client.register_worker("revoked")
            worker_id = grant["worker"]["id"]
            target = live.client.submit(_long_body(seed=0))[0]
            sibling = live.client.submit(_long_body(seed=1))[0]
            leased = live.client.lease(worker_id, max_jobs=2)
            assert len(leased["jobs"]) == 2
            assert leased["checkpoint_every"] == EVERY
            lease_id = leased["lease"]["lease_id"]

            status, body = live.raw("DELETE", f"/jobs/{target['id']}")
            assert status == 202
            assert body["preempting"] is True
            assert body["state"] == "cancelled"  # fleet path is immediate
            assert "lease revoked" in body["error"]
            # The next heartbeat tells the worker to stop.
            with pytest.raises(LeaseExpiredError):
                live.client.heartbeat(lease_id)
            # Requeue-vs-discard is explicit: the sibling is queued
            # again (attempt 2 comes from a fresh lease), not lost.
            requeued = live.client.job(sibling["id"])
            assert requeued["state"] == "queued"
            released = live.client.lease(worker_id)
            assert released["job"]["id"] == sibling["id"]
            assert released["lease"]["attempt"] == 2

    def test_fleet_worker_preempted_mid_job_then_resumed_bitwise(self):
        """End to end over HTTP: a real FleetWorker's heartbeats carry
        checkpoints into the store, DELETE revokes its lease mid-run,
        the worker stops without reporting, and the resubmitted job
        resumes from the carried checkpoint to a bitwise-equal
        finish."""
        with LiveAnytime(workers=0, lease_ttl_s=1.2) as live:
            record = live.client.submit(_long_body())[0]
            worker = FleetWorker(WorkerConfig(server=live.url))
            worker.register()
            assert worker.heartbeat_s == pytest.approx(0.4)
            ran = threading.Thread(target=worker.run_one, daemon=True)
            ran.start()
            key = job_key(CampaignJob(
                network="fig1_toy", mode="gpgpu", episodes=LONG, kind="search"
            ))
            deadline = time.monotonic() + 30
            while live.service.store.get_checkpoint(key) is None:
                assert time.monotonic() < deadline, "no checkpoint carried"
                assert ran.is_alive(), "worker finished before preemption"
                time.sleep(0.02)
            status, body = live.raw("DELETE", f"/jobs/{record['id']}")
            assert status == 202 and body["preempting"] is True
            ran.join(timeout=30)
            assert not ran.is_alive()
            assert worker.stats.lost_leases == 1
            assert worker.stats.completed == 0
            assert live.client.job(record["id"])["state"] == "cancelled"
            # The revoked job's checkpoint survives for the resume.
            stored = live.service.store.get_checkpoint(key)
            assert stored is not None

            resumed = live.client.submit(_long_body(resume=True))[0]
            assert worker.run_one() is True
            final = live.client.wait(resumed["id"], timeout=120)
            assert final["state"] == "done"
            assert worker.stats.completed == 1
            assert live.service.store.get_checkpoint(key) is None
        local = _local_long()
        assert final["best_ms"] == local.best_ms  # bitwise
        assert final["payload"]["curve_ms"] == local.curve_ms
