"""The async campaign service: queue, workers, HTTP API, streaming.

Most tests drive a real service over HTTP: the event loop runs in a
background thread and the stdlib :class:`ServiceClient` talks to the
bound port, so the wire format, back-pressure statuses and SSE framing
are all exercised for real.  Queue-mechanics unit tests call
``CampaignService.submit`` directly on an unstarted service (no loop,
no workers), which is the supported workers=0 mode.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core.config import SearchConfig, ServiceConfig
from repro.core.search import QSDNNSearch
from repro.errors import ConfigError, QueueFullError, ServiceError
from repro.runtime.campaign import CampaignJob, load_or_profile_lut
from repro.runtime.client import ServiceClient
from repro.runtime.service import (
    CampaignService,
    checkpoints_of,
    jobs_from_body,
)
from repro.utils.stats import running_min

EPISODES = 150


class LiveService:
    """A service running on a background event-loop thread."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        self.config = ServiceConfig(**overrides)
        self.service = CampaignService(self.config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "LiveService":
        self._thread.start()
        assert self._started.wait(10), "service failed to start"
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.service.port}", timeout=60
        )
        return self

    def wait_closed(self, timeout: float = 60.0) -> None:
        """Block until a shutdown (local or remote) has completed."""
        asyncio.run_coroutine_threadsafe(
            self.service.wait_closed(), self.loop
        ).result(timeout)

    def __exit__(self, *exc) -> None:
        try:
            # Idempotent: completes immediately if already shut down.
            asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self.loop
            ).result(60)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(10)


def _toy_body(**overrides):
    body = {"network": "fig1_toy", "mode": "gpgpu", "episodes": EPISODES}
    body.update(overrides)
    return body


class TestSubmitPollResult:
    def test_round_trip_and_bitwise_equality(self):
        """submit -> poll -> result; best_ms bitwise == a local run."""
        with LiveService() as live:
            record = live.client.submit(_toy_body())[0]
            assert record["id"].startswith("job-")
            assert record["state"] in ("queued", "running")
            final = live.client.wait(record["id"], timeout=120)
        assert final["state"] == "done"
        assert not final["from_store"]
        payload = final["payload"]
        assert final["payload_kind"] == "search_result"
        # The service's search is the same search `repro search` runs:
        # identical LUT (deterministic profiler), identical config.
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        lut, _ = load_or_profile_lut(job)
        local = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        assert payload["best_ms"] == local.best_ms  # bitwise
        assert payload["curve_ms"] == local.curve_ms
        assert final["best_ms"] == local.best_ms

    def test_duplicate_submission_is_store_hit(self):
        with LiveService() as live:
            first = live.client.submit(_toy_body())[0]
            done = live.client.wait(first["id"], timeout=120)
            again = live.client.submit(_toy_body())[0]
            assert again["id"] != first["id"]
            assert again["state"] == "done"
            assert again["from_store"]
            assert again["best_ms"] == done["best_ms"]  # bitwise via store
            # The store answers /results queries too.
            rows = live.client.results(network="fig1_toy", mode="gpgpu")
            assert len(rows) == 1
            assert rows[0]["best_ms"] == done["best_ms"]

    def test_in_flight_duplicates_coalesce(self):
        with LiveService(workers=0) as live:
            first = live.client.submit(_toy_body())[0]
            second = live.client.submit(_toy_body())[0]
            assert second["id"] == first["id"]
            assert live.client.health()["queue_depth"] == 1

    def test_multi_seed_submission_round_trip(self):
        """A single multi-seed job (scalar 'seeds' field) must not be
        misparsed as a grid submission."""
        with LiveService() as live:
            record = live.client.submit(
                _toy_body(kind="multi-seed", seeds=2)
            )[0]
            final = live.client.wait(record["id"], timeout=120)
        assert final["state"] == "done"
        assert final["payload_kind"] == "multi_seed_result"
        assert len(final["payload"]["results"]) == 2

    def test_grid_submission_expands(self):
        with LiveService(workers=0) as live:
            records = live.client.submit(
                {
                    "networks": ["fig1_toy"],
                    "modes": ["cpu", "gpgpu"],
                    "seeds": [0, 1],
                    "episodes": EPISODES,
                }
            )
            assert len(records) == 4
            assert {r["job"]["mode"] for r in records} == {"cpu", "gpgpu"}
            assert live.client.health()["queue_depth"] == 4


class TestWarmStartSubmission:
    def test_warm_submit_mines_the_corpus(self):
        """Cold solve -> warm re-submit at half budget: the service
        resolves a stored prior from its own corpus, the warm run is no
        worse, and the uptake counter shows on ``GET /metrics``."""
        with LiveService() as live:
            cold = live.client.submit(_toy_body(seed=0))[0]
            cold_final = live.client.wait(cold["id"], timeout=120)
            warm = live.client.submit(
                _toy_body(
                    seed=0, episodes=EPISODES // 2, warm_start="stored"
                )
            )[0]
            warm_final = live.client.wait(warm["id"], timeout=120)
            metrics = live.client.metrics()
        assert warm_final["state"] == "done"
        assert not warm_final["from_store"]  # warm key != cold key
        payload = warm_final["payload"]
        assert payload["warm_start"] == "stored"
        assert payload["best_ms"] <= cold_final["best_ms"]
        assert 'repro_warm_starts_total{kind="stored"} 1' in metrics

    def test_warm_submit_with_empty_corpus_degrades_to_cold(self):
        """No corpus rows -> the job still runs, bitwise-cold, and the
        uptake counter stays silent (nothing was resolved)."""
        with LiveService() as live:
            record = live.client.submit(_toy_body(warm_start="stored"))[0]
            final = live.client.wait(record["id"], timeout=120)
            metrics = live.client.metrics()
        assert final["state"] == "done"
        # Requested kind is recorded even though the prior degraded.
        assert final["payload"]["warm_start"] == "stored"
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        lut, _ = load_or_profile_lut(job)
        local = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        assert final["payload"]["best_ms"] == local.best_ms  # bitwise
        assert final["payload"]["curve_ms"] == local.curve_ms
        assert 'repro_warm_starts_total{kind=' not in metrics


class TestProgressStreaming:
    def test_stream_matches_curve(self):
        with LiveService() as live:
            record = live.client.submit(_toy_body())[0]
            events = list(live.client.stream_progress(record["id"]))
            final = live.client.wait(record["id"], timeout=120)
        kinds = [event for event, _ in events]
        assert kinds[-1] == "done"
        checkpoints = [data for event, data in events if event == "checkpoint"]
        assert checkpoints, "no checkpoints streamed"
        # Checkpoint ordering and values match SearchResult.curve_ms:
        # strictly increasing episodes, monotone non-increasing best,
        # and each best equals the running min of the curve (bitwise).
        curve = final["payload"]["curve_ms"]
        best_curve = running_min(curve)
        episodes = [c["episode"] for c in checkpoints]
        assert episodes == sorted(set(episodes))
        bests = [c["best_ms"] for c in checkpoints]
        assert all(a >= b for a, b in zip(bests, bests[1:]))
        for point in checkpoints:
            assert point["best_ms"] == best_curve[point["episode"]]
        assert episodes[-1] == len(curve) - 1

    def test_stream_of_finished_job_replays(self):
        with LiveService() as live:
            record = live.client.submit(_toy_body())[0]
            live.client.wait(record["id"], timeout=120)
            events = list(live.client.stream_progress(record["id"]))
        assert events[0] == ("status", {"id": record["id"], "state": "done"})
        assert events[-1][0] == "done"

    def test_unknown_job_404(self):
        with LiveService(workers=0) as live:
            with pytest.raises(ServiceError, match="404"):
                list(live.client.stream_progress("job-999"))
            with pytest.raises(ServiceError, match="404"):
                live.client.job("job-999")


class TestBackPressure:
    def test_queue_full_answers_429(self):
        with LiveService(workers=0, queue_limit=2) as live:
            live.client.submit(_toy_body(seed=0))
            live.client.submit(_toy_body(seed=1))
            with pytest.raises(QueueFullError):
                live.client.submit(_toy_body(seed=2))
            # Raw status check: it really is a 429 with Retry-After.
            status, body = live.client.request(
                "POST", "/jobs", _toy_body(seed=3)
            )
            assert status == 429
            assert "full" in body["error"]

    def test_grid_admission_is_all_or_nothing(self):
        with LiveService(workers=0, queue_limit=3) as live:
            live.client.submit(_toy_body(seed=0))
            with pytest.raises(QueueFullError):
                live.client.submit(
                    {
                        "networks": ["fig1_toy"],
                        "seeds": [1, 2, 3],
                        "episodes": EPISODES,
                    }
                )
            # Nothing from the rejected grid was enqueued.
            assert live.client.health()["queue_depth"] == 1

    def test_cancel_frees_a_slot(self):
        with LiveService(workers=0, queue_limit=1) as live:
            record = live.client.submit(_toy_body(seed=0))[0]
            with pytest.raises(QueueFullError):
                live.client.submit(_toy_body(seed=1))
            cancelled = live.client.cancel(record["id"])
            assert cancelled["state"] == "cancelled"
            live.client.submit(_toy_body(seed=1))  # slot is free again

    def test_cancel_non_queued_conflicts(self):
        with LiveService() as live:
            record = live.client.submit(_toy_body())[0]
            live.client.wait(record["id"], timeout=120)
            with pytest.raises(ServiceError, match="409"):
                live.client.cancel(record["id"])


class TestShutdown:
    def test_graceful_shutdown_finishes_in_flight_jobs(self):
        with LiveService(workers=1) as live:
            # A job slow enough to still be running at shutdown time.
            slow = live.client.submit(_toy_body(episodes=8000, seed=7))[0]
            deadline = time.monotonic() + 30
            while live.client.job(slow["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queued = live.client.submit(_toy_body(episodes=8000, seed=8))[0]
            live.client.shutdown()
            live.wait_closed()
            service = live.service
            in_flight = service.records[slow["id"]]
            assert in_flight.state == "done"
            assert in_flight.result is not None
            assert service.records[queued["id"]].state == "cancelled"

    def test_submissions_after_shutdown_are_rejected(self):
        with LiveService(workers=0) as live:
            live.client.shutdown()
            live.wait_closed()
            service = live.service
            with pytest.raises(ServiceError):
                service.submit(
                    CampaignJob(network="fig1_toy", episodes=EPISODES)
                )

    def test_remote_shutdown_task_is_strongly_referenced(self):
        """The loop holds tasks weakly — ``POST /shutdown`` must pin
        its graceful-shutdown task on the service so it cannot be
        garbage-collected mid-drain."""
        with LiveService(workers=0) as live:
            live.client.shutdown()
            live.wait_closed()
            task = live.service._shutdown_task
            assert task is not None and task.done()


class TestValidation:
    def test_bad_submissions_are_400(self):
        with LiveService(workers=0) as live:
            for body in (
                {"network": "nope"},
                {"network": "fig1_toy", "typo": 1},
                {"networks": []},
                {"networks": ["fig1_toy"], "typo": 1},
                {"network": "fig1_toy", "priority": "high"},
                {"network": "fig1_toy", "mode": "tpu"},  # ValueError
                {"network": "fig1_toy", "episodes": "100"},
                {"network": "fig1_toy", "seed": "0"},  # stringly ints
                {"network": "fig1_toy", "repeats": 0},
                ["not", "an", "object"],
            ):
                status, parsed = live.client.request("POST", "/jobs", body)
                assert status == 400, body
                assert parsed["error"]
            # Bad query values answer 400 too, not a dropped connection.
            status, parsed = live.client.request("GET", "/results?seed=abc")
            assert status == 400 and parsed["error"]
            # Typo'd filters must not silently match the whole corpus.
            status, parsed = live.client.request("GET", "/results?platfrom=x")
            assert status == 400 and "platfrom" in parsed["error"]

    def test_unknown_route_404(self):
        with LiveService(workers=0) as live:
            status, _ = live.client.request("GET", "/nope")
            assert status == 404

    def test_oversized_headers_answer_400(self):
        """> 64 KiB of headers overruns the stream limit; the server
        must answer 400, not drop the connection unhandled."""
        import http.client

        with LiveService(workers=0) as live:
            conn = http.client.HTTPConnection(
                "127.0.0.1", live.service.port, timeout=30
            )
            try:
                conn.putrequest("GET", "/")
                conn.putheader("X-Pad", "x" * 70_000)
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400
                assert b"too large" in response.read()
            finally:
                conn.close()

    def test_oversized_body_answers_400_without_reading_it(self):
        """A huge Content-Length is rejected up front — the body is
        never buffered (the declared length alone triggers the 400)."""
        import socket

        with LiveService(workers=0) as live:
            with socket.create_connection(
                ("127.0.0.1", live.service.port), timeout=30
            ) as sock:
                sock.sendall(
                    b"POST /jobs HTTP/1.1\r\n"
                    b"Content-Length: 10000000000\r\n\r\n"
                )
                response = sock.recv(65536)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"exceeds" in response

    def test_shutdown_with_idle_connection(self):
        """An idle client connection (nothing sent) must not block
        graceful shutdown (Python >= 3.12.1 waits for handlers)."""
        import socket

        with LiveService(workers=0) as live:
            idle = socket.create_connection(
                ("127.0.0.1", live.service.port), timeout=30
            )
            try:
                live.client.shutdown()
                live.wait_closed(timeout=15)
            finally:
                idle.close()

    def test_index_and_healthz(self):
        with LiveService(workers=0) as live:
            status, index = live.client.request("GET", "/")
            assert status == 200
            assert "POST /jobs" in index["endpoints"]
            health = live.client.health()
            assert health["status"] == "ok"
            assert health["queue_limit"] == 64


class TestJobsFromBody:
    def test_single_job_defaults_to_search_kind(self):
        jobs, priority = jobs_from_body({"network": "fig1_toy"})
        assert len(jobs) == 1
        assert jobs[0].kind == "search"
        assert priority == 10

    def test_grid_form(self):
        jobs, priority = jobs_from_body(
            {
                "networks": ["fig1_toy", "lenet5"],
                "modes": ["cpu"],
                "seeds": [0, 1],
                "kind": "table2",
                "priority": 3,
            }
        )
        assert len(jobs) == 4
        assert all(j.kind == "table2" for j in jobs)
        assert priority == 3

    def test_single_multi_seed_job_is_not_a_grid(self):
        jobs, _ = jobs_from_body(
            {"network": "fig1_toy", "kind": "multi-seed", "seeds": 3}
        )
        assert len(jobs) == 1
        assert jobs[0].kind == "multi-seed" and jobs[0].seeds == 3

    def test_rejections(self):
        for body in (
            None,
            {},
            {"networks": "fig1_toy"},
            {"network": "fig1_toy", "wat": 1},
        ):
            with pytest.raises(ConfigError):
                jobs_from_body(body)


class TestCheckpoints:
    def test_matches_running_min(self):
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        lut, _ = load_or_profile_lut(job)
        result = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        points = checkpoints_of(result)
        best_curve = running_min(result.curve_ms)
        assert points[0]["episode"] == 0
        assert points[-1]["episode"] == len(result.curve_ms) - 1
        for point in points:
            assert point["best_ms"] == best_curve[point["episode"]]
        bests = [p["best_ms"] for p in points]
        assert all(a >= b for a, b in zip(bests, bests[1:]))

    def test_curveless_payload_gets_terminal_checkpoint(self):
        class Flat:
            best_ms = 4.5
            curve_ms = []

        assert checkpoints_of(Flat()) == [{"episode": 0, "best_ms": 4.5}]
        assert checkpoints_of(object()) == []


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(port=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(workers=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigError):
            ServiceConfig(heartbeat_s=0)
        with pytest.raises(ConfigError):
            ServiceConfig(keep_records=0)
        assert ServiceConfig(workers=0).workers == 0


class TestRecordRetention:
    def test_terminal_records_evicted_past_bound(self):
        """Store cache hits mint records; the retention bound keeps a
        long-running service's memory flat (payloads stay queryable
        through the store)."""
        service = CampaignService(
            ServiceConfig(workers=0, keep_records=3, queue_limit=100)
        )
        queued = service.submit(
            CampaignJob(network="fig1_toy", episodes=EPISODES, seed=99)
        )
        # Mint terminal records: cancelled jobs are finished.
        for seed in range(6):
            record = service.submit(
                CampaignJob(network="fig1_toy", episodes=EPISODES, seed=seed)
            )
            service.cancel(record.id)
        assert len(service.records) <= 3 + 1  # bound + the queued job
        # Live (non-terminal) records are never evicted.
        assert queued.id in service.records
        assert service.records[queued.id].state == "queued"

    def test_prune_never_evicts_the_record_being_returned(self):
        """Even at keep_records=1 with the map full of live records, a
        store-hit submission's record must survive its own prune — the
        acknowledged job id has to stay queryable."""
        from repro.runtime.store import ResultStore

        store = ResultStore(":memory:")
        service = CampaignService(
            ServiceConfig(workers=0, keep_records=1, queue_limit=100),
            store=store,
        )
        solved = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        lut, _ = load_or_profile_lut(solved)
        store.put(
            solved, QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        )
        # Fill the record map past the bound with live (queued) jobs.
        for seed in range(3):
            service.submit(
                CampaignJob(network="fig1_toy", episodes=EPISODES, seed=seed)
            )
        hit = service.submit(solved)
        assert hit.state == "done" and hit.from_store
        assert hit.id in service.records  # not evicted by its own prune


class TestStoreBackedAnalysis:
    def test_compare_methods_many_reuses_store(self, tmp_path):
        from repro.analysis.compare import compare_methods_many
        from repro.backends.registry import Mode
        from repro.hw import jetson_tx2
        from repro.runtime.store import ResultStore

        store_path = tmp_path / "results.sqlite"
        first = compare_methods_many(
            ["fig1_toy"], Mode.CPU, jetson_tx2(), episodes=EPISODES,
            store_path=str(store_path),
        )
        with ResultStore(store_path) as store:
            assert len(store) == 1
        again = compare_methods_many(
            ["fig1_toy"], Mode.CPU, jetson_tx2(), episodes=EPISODES,
            store_path=str(store_path),
        )
        assert again == first  # bitwise: served from the store
        # Without a store the direct path still works.
        direct = compare_methods_many(
            ["fig1_toy"], Mode.CPU, jetson_tx2(), episodes=EPISODES
        )
        assert direct == first


class TestServeSmokeCLI:
    """Tier-1 smoke of `repro serve` + `repro submit` as subprocesses."""

    def test_serve_submit_roundtrip(self, tmp_path):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", "1",
                "--store", str(tmp_path / "results.sqlite"),
                "--cache-dir", str(tmp_path / "luts"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = server.stdout.readline()
            assert "serving on http://" in line, line
            url = line.split()[2]
            out = tmp_path / "record.json"
            code = subprocess.run(
                [
                    sys.executable, "-m", "repro", "submit", "--url", url,
                    "--network", "fig1_toy", "--mode", "gpgpu",
                    "--episodes", str(EPISODES), "--wait", "--watch",
                    "--out", str(out),
                ],
                capture_output=True,
                text=True,
                timeout=120,
                env=env,
            )
            assert code.returncode == 0, code.stdout + code.stderr
            assert "done: best_ms=" in code.stdout
            record = json.loads(out.read_text())
            assert record["state"] == "done"
            # Bitwise equality against the equivalent local search.
            job = CampaignJob(
                network="fig1_toy", mode="gpgpu", episodes=EPISODES,
                kind="search",
            )
            lut, _ = load_or_profile_lut(job)
            local = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
            assert record["best_ms"] == local.best_ms
            ServiceClient(url, timeout=30).shutdown()
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(10)
