"""The docs link checker (scripts/check_docs_links.py) and the repo docs."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_docs_links.py"
)
_spec = importlib.util.spec_from_file_location("check_docs_links", _SCRIPT)
checker = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs_links", checker)
_spec.loader.exec_module(checker)


class TestGithubSlug:
    def test_basic(self):
        assert checker.github_slug("Running the service") == "running-the-service"

    def test_strips_inline_code_and_punctuation(self):
        assert checker.github_slug("`POST /jobs`") == "post-jobs"
        assert checker.github_slug("`GET /jobs/{id}/progress`") == (
            "get-jobsidprogress"
        )
        assert checker.github_slug("Errors and back-pressure") == (
            "errors-and-back-pressure"
        )


class TestCheckFile:
    def test_dead_relative_link_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [other](missing.md) for details\n")
        problems = checker.check_file(doc)
        assert len(problems) == 1
        assert "dead relative link" in problems[0]
        assert "doc.md:1" in problems[0]

    def test_live_relative_link_and_anchor_pass(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Deep Dive\n\ntext\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[there](other.md) and [anchored](other.md#deep-dive)\n"
        )
        assert checker.check_file(doc) == []

    def test_dangling_anchor_reported(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Present\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[bad](other.md#absent)\n")
        problems = checker.check_file(doc)
        assert len(problems) == 1 and "#absent" in problems[0]

    def test_same_file_fragment(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# A Heading\n\n[up](#a-heading) [bad](#nope)\n")
        problems = checker.check_file(doc)
        assert len(problems) == 1 and "'#nope'" in problems[0]

    def test_external_urls_not_checked(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[x](https://example.com/missing) [m](mailto:a@b.c)\n"
        )
        assert checker.check_file(doc) == []

    def test_links_in_code_fences_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```bash\ncurl [not a real link](missing.md)\n```\n"
        )
        assert checker.check_file(doc) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("no links\n")
        bad = tmp_path / "bad.md"
        bad.write_text("[dead](nope.md)\n")
        assert checker.main([str(good)]) == 0
        assert checker.main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out


class TestRepoDocs:
    def test_committed_docs_are_clean(self):
        """The real README + docs/ tree passes the checker (the CI
        docs job runs the same command)."""
        assert checker.main([]) == 0

    def test_docs_tree_exists(self):
        docs = pathlib.Path(__file__).resolve().parent.parent / "docs"
        for name in ("architecture.md", "service.md", "kernels.md"):
            assert (docs / name).exists(), f"docs/{name} missing"

    def test_service_doc_covers_every_implemented_endpoint(self):
        """Every route the service implements is documented (and the
        doc does not drift from the code)."""
        from repro.core.config import ServiceConfig
        from repro.runtime.service import CampaignService

        doc = (
            pathlib.Path(__file__).resolve().parent.parent
            / "docs"
            / "service.md"
        ).read_text()
        service = CampaignService(ServiceConfig(workers=0))
        for endpoint in service._index()["endpoints"]:
            _, route = endpoint.split(" ", 1)
            assert route in doc, f"docs/service.md missing {endpoint}"
