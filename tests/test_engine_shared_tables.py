"""Shared-memory pricing tables (exactness contract 7).

A :class:`SharedCostTables` segment must hand every attaching process
an engine that prices bitwise-identically to the private one it was
packed from, zero-copy and read-only, and the owner's unlink must
remove the segment from the system exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Mode
from repro.engine.pricing import SharedCostTables
from repro.errors import ScheduleError
from tests.helpers import synthetic_chain_lut


@pytest.fixture()
def engine(toy_lut_gpgpu):
    return toy_lut_gpgpu.indexed().engine()


@pytest.fixture()
def shared(engine):
    tables = SharedCostTables.create(engine)
    yield tables
    tables.close()
    tables.unlink()


def _all_choice_vectors(engine, rng, count=32):
    counts = np.asarray(engine.num_actions, dtype=np.int64)
    return [rng.integers(0, counts) for _ in range(count)]


class TestRoundTrip:
    def test_attached_engine_prices_bitwise(self, engine, shared):
        attached = SharedCostTables.attach(shared.name)
        try:
            twin = attached.engine()
            rng = np.random.default_rng(0)
            for choices in _all_choice_vectors(engine, rng):
                assert twin.price(choices) == engine.price(choices)
                assert np.array_equal(
                    twin.layer_costs(choices), engine.layer_costs(choices)
                )
            batch = np.stack(_all_choice_vectors(engine, rng, count=8))
            assert np.array_equal(
                twin.layer_costs_batch(batch), engine.layer_costs_batch(batch)
            )
        finally:
            attached.close()

    def test_branchy_synthetic_round_trip(self):
        lut = synthetic_chain_lut(6, 4, seed=3)
        engine = lut.indexed().engine()
        tables = SharedCostTables.create(engine)
        try:
            twin = SharedCostTables.attach(tables.name).engine()
            rng = np.random.default_rng(1)
            for choices in _all_choice_vectors(engine, rng, count=16):
                assert twin.price(choices) == engine.price(choices)
        finally:
            tables.close()
            tables.unlink()

    def test_kernel_views_identical(self, engine, shared):
        twin = SharedCostTables.attach(shared.name).engine()
        for mine, theirs in zip(engine.kernel_views(), twin.kernel_views()):
            if isinstance(mine, np.ndarray):
                assert np.array_equal(mine, theirs)
            else:
                assert mine == theirs


class TestMemoryModel:
    def test_attached_views_are_zero_copy_and_read_only(self, shared):
        twin = SharedCostTables.attach(shared.name)
        engine = twin.engine()
        for times in engine.times:
            assert times.base is not None  # a view, not a copy
            with pytest.raises(ValueError):
                times[0] = 1.0
        for matrix in engine.edge_matrices:
            assert matrix.base is not None
            if matrix.size:
                with pytest.raises(ValueError):
                    matrix[0, 0] = 1.0

    def test_engine_is_cached_per_attachment(self, shared):
        twin = SharedCostTables.attach(shared.name)
        assert twin.engine() is twin.engine()


class TestLifecycle:
    def test_unlink_removes_segment(self, engine):
        tables = SharedCostTables.create(engine)
        name = tables.name
        SharedCostTables.attach(name).close()  # attachable while live
        tables.close()
        tables.unlink()
        with pytest.raises(FileNotFoundError):
            SharedCostTables.attach(name)

    def test_unlink_is_idempotent(self, engine):
        tables = SharedCostTables.create(engine)
        tables.close()
        tables.unlink()
        tables.unlink()  # second call must not raise

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedCostTables.attach("repro-no-such-segment")


class TestAdoptEngine:
    def test_adopt_installs_shared_engine(self, toy_lut_gpgpu, shared):
        attached = SharedCostTables.attach(shared.name)
        twin = attached.engine()
        view = toy_lut_gpgpu.indexed()
        original = view._engine  # session fixture: restore when done
        try:
            view._engine = None
            assert view.adopt_engine(twin) is twin
            assert view.has_engine
            assert view.engine() is twin
        finally:
            view._engine = original

    def test_adopt_rejects_mismatched_engine(self, toy_lut_gpgpu, tx2):
        from repro.analysis._cache import cached_lut

        other = cached_lut("lenet5", Mode.GPGPU, tx2, seed=0)
        with pytest.raises(ScheduleError):
            toy_lut_gpgpu.indexed().adopt_engine(other.indexed().engine())
