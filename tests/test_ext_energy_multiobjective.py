"""Tests for the energy model and multi-objective extension."""

from __future__ import annotations

import pytest

from repro.baselines import chain_dp
from repro.errors import ConfigError
from repro.ext.energy import EnergyModel, schedule_energy_mj
from repro.ext.multiobjective import (
    ParetoPoint,
    pareto_front,
    pareto_sweep,
    weighted_objective_lut,
)
from repro.hw.processor import ProcessorKind

from tests.helpers import synthetic_chain_lut


@pytest.fixture(scope="module")
def lut():
    return synthetic_chain_lut(8, 4, seed=42)


def _first_assignment(lut):
    return {layer: lut.candidates[layer][0] for layer in lut.layers}


class TestEnergyModel:
    def test_defaults_gpu_hungrier(self):
        model = EnergyModel()
        assert model.watts(ProcessorKind.GPU) > model.watts(ProcessorKind.CPU)

    def test_invalid_watts_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel(cpu_watts=0.0)

    def test_energy_positive(self, lut):
        assert schedule_energy_mj(lut, _first_assignment(lut)) > 0

    def test_one_ms_at_one_watt_is_one_mj(self):
        lut = synthetic_chain_lut(2, 2, seed=0)
        model = EnergyModel(cpu_watts=1.0, gpu_watts=1.0, transfer_watts=1.0)
        # prim0 is CPU/NCHW on both layers: no penalties.
        assignments = {layer: "prim0" for layer in lut.layers}
        energy = schedule_energy_mj(lut, assignments, model)
        latency = lut.schedule_time(assignments)
        assert energy == pytest.approx(latency)

    def test_gpu_schedule_costs_more_energy_per_ms(self, lut):
        cpu_uid = "prim0"  # CPU in synthetic meta
        gpu_uid = "prim1"  # GPU in synthetic meta
        cpu_sched = {layer: cpu_uid for layer in lut.layers}
        gpu_sched = {layer: gpu_uid for layer in lut.layers}
        model = EnergyModel()
        cpu_ratio = schedule_energy_mj(lut, cpu_sched, model) / lut.schedule_time(
            cpu_sched
        )
        gpu_ratio = schedule_energy_mj(lut, gpu_sched, model) / lut.schedule_time(
            gpu_sched
        )
        assert gpu_ratio > cpu_ratio


class TestWeightedObjective:
    def test_lam_zero_changes_nothing(self, lut):
        weighted = weighted_objective_lut(lut, 0.0)
        assignments = _first_assignment(lut)
        assert weighted.schedule_time(assignments) == pytest.approx(
            lut.schedule_time(assignments)
        )

    def test_objective_is_latency_plus_lam_energy(self, lut):
        lam = 0.3
        model = EnergyModel()
        weighted = weighted_objective_lut(lut, lam, model)
        assignments = _first_assignment(lut)
        expected = lut.schedule_time(assignments) + lam * schedule_energy_mj(
            lut, assignments, model
        )
        assert weighted.schedule_time(assignments) == pytest.approx(expected)

    def test_negative_lam_rejected(self, lut):
        with pytest.raises(ConfigError):
            weighted_objective_lut(lut, -0.1)

    def test_mode_tag_records_lam(self, lut):
        assert "lam=0.5" in weighted_objective_lut(lut, 0.5).mode


class TestParetoSweep:
    def test_sweep_produces_one_point_per_lam(self, lut):
        points = pareto_sweep(lut, lams=[0.0, 0.5], episodes=200, seed=0)
        assert [p.lam for p in points] == [0.0, 0.5]

    def test_lam_zero_matches_latency_optimum(self, lut):
        points = pareto_sweep(lut, lams=[0.0], episodes=400, seed=0)
        assert points[0].latency_ms == pytest.approx(
            chain_dp(lut).best_ms, rel=0.02
        )

    def test_energy_weight_reduces_energy(self, lut):
        points = pareto_sweep(
            lut, lams=[0.0, 2.0], episodes=400, seed=0
        )
        assert points[1].energy_mj <= points[0].energy_mj * 1.001

    def test_pareto_front_is_nondominated(self):
        points = [
            ParetoPoint(0.0, 10.0, 100.0, {}),
            ParetoPoint(0.1, 11.0, 80.0, {}),
            ParetoPoint(0.2, 12.0, 90.0, {}),  # dominated by the second
            ParetoPoint(0.3, 15.0, 60.0, {}),
        ]
        front = pareto_front(points)
        assert [(p.latency_ms, p.energy_mj) for p in front] == [
            (10.0, 100.0),
            (11.0, 80.0),
            (15.0, 60.0),
        ]

    def test_gpu_layers_counter(self, lut):
        points = pareto_sweep(lut, lams=[0.0], episodes=100, seed=0)
        count = points[0].gpu_layers(lut)
        assert 0 <= count <= len(lut.layers)
