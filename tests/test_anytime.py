"""Anytime search: checkpoint codec, preemption, and bitwise resume.

Three layers of proof that a resumed search is indistinguishable from
an uninterrupted one.  Codec tests show the JSON text round-trips
every double and RNG state bit-for-bit (and rejects unknown schema
versions loudly).  Deterministic tests preempt a search at a known
boundary and compare the resumed run's result *and* final internal
state (via a later checkpoint) against the plain run.  A hypothesis
property does the same over random LUTs, budgets, boundaries, replay
and bootstrap settings — including capture under one kernel backend
and resume under another.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MultiSeedSearch, QSDNNSearch, SearchConfig, seed_range
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT,
    check_resume,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.core.kernels import numba_available
from repro.errors import CheckpointError, ConfigError, PreemptedError

from tests.helpers import synthetic_chain_lut

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


def _config(**overrides) -> SearchConfig:
    fields = dict(episodes=60, seed=3, polish_sweeps=0, kernel="reference")
    fields.update(overrides)
    return SearchConfig(**fields)


def _capture_at(lut, config, episode: int) -> dict:
    """Run until the boundary at ``episode``, preempt, return the
    encoded-then-decoded checkpoint (the exact resume input)."""

    def stop(ckpt: dict):
        return ckpt["episode"] < episode

    with pytest.raises(PreemptedError) as exc:
        QSDNNSearch(lut, config).run(checkpoint_every=1, on_checkpoint=stop)
    ckpt = exc.value.checkpoint
    assert ckpt["episode"] == episode
    return decode_checkpoint(encode_checkpoint(ckpt))


def _strip_elapsed(ckpt: dict) -> dict:
    """Everything wall-clock-independent in a checkpoint."""
    return {k: v for k, v in ckpt.items() if k != "elapsed_s"}


class TestCheckpointCodec:
    def test_round_trip_is_bitwise(self):
        lut = synthetic_chain_lut(5, 3, seed=11)
        ckpt = _capture_at(lut, _config(), 20)
        text = encode_checkpoint(ckpt)
        again = decode_checkpoint(text)
        # Dict equality on floats is bitwise: 1.0 != nextafter(1.0, 2).
        assert again == ckpt
        assert encode_checkpoint(again) == text
        snap = again["seeds"][0]
        # The fields a resume actually needs, all present and typed.
        assert snap["seed"] == 3
        assert all(isinstance(q, float) for q in snap["q"])
        assert snap["policy_rng"]["bit_generator"] == "PCG64"
        assert isinstance(snap["policy_rng"]["state"]["state"], int)
        assert math.isfinite(ckpt["best_ms"])
        assert len(snap["curve"]) == 20

    def test_awkward_doubles_survive_encode(self):
        # Shortest-repr JSON floats round-trip any double exactly.
        values = [0.1, 1 / 3, 2.0**-1074, 1e308, -0.0, 123456.789012345678]
        text = json.dumps(values)
        assert json.loads(text) == values

    def test_unknown_format_rejected_loudly(self):
        lut = synthetic_chain_lut(4, 2, seed=0)
        ckpt = _capture_at(lut, _config(), 10)
        bumped = dict(ckpt, format=CHECKPOINT_FORMAT + 1)
        with pytest.raises(CheckpointError, match="unknown checkpoint format"):
            decode_checkpoint(encode_checkpoint(bumped))
        with pytest.raises(CheckpointError, match="unknown checkpoint format"):
            check_resume(
                bumped, kind="search", graph=lut.graph_name, mode=lut.mode,
                episodes=60, seeds=[3],
            )

    def test_junk_rejected(self):
        with pytest.raises(CheckpointError, match="parse"):
            decode_checkpoint("{not json")
        with pytest.raises(CheckpointError, match="JSON object"):
            decode_checkpoint("[1, 2, 3]")

    def test_check_resume_rejects_mismatches(self):
        lut = synthetic_chain_lut(4, 2, seed=0)
        ckpt = _capture_at(lut, _config(), 10)
        good = dict(
            kind="search", graph=lut.graph_name, mode=lut.mode,
            episodes=60, seeds=[3],
        )
        check_resume(ckpt, **good)  # the matching search passes
        for field, wrong in (
            ("kind", "multi-seed"),
            ("graph", "other-net"),
            ("mode", "cpu"),
            ("episodes", 61),
            ("seeds", [4]),
        ):
            with pytest.raises(CheckpointError):
                check_resume(ckpt, **{**good, field: wrong})
        # An episode index outside (0, episodes) cannot resume.
        with pytest.raises(CheckpointError, match="outside"):
            check_resume(dict(ckpt, episode=60), **good)

    def test_warm_checkpoints_record_the_kind(self):
        """A warm run's checkpoint names its prior kind; a cold run's
        omits the key entirely (byte-identical to pre-prior captures),
        and resuming across the warm/cold boundary is refused."""
        from repro.core.priors import SchedulePrior

        lut = synthetic_chain_lut(3, 2, seed=5)
        probe = QSDNNSearch(lut, _config(episodes=8, seed=9)).run()
        prior = SchedulePrior(probe.best_assignments)

        cold_ckpt = _capture_at(lut, _config(), episode=2)
        assert "warm_start" not in cold_ckpt

        def stop(ckpt: dict):
            return ckpt["episode"] < 2

        with pytest.raises(PreemptedError) as exc:
            QSDNNSearch(
                lut, _config(warm_start="stored"), prior=prior
            ).run(checkpoint_every=1, on_checkpoint=stop)
        warm_ckpt = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        assert warm_ckpt["warm_start"] == "stored"

        with pytest.raises(CheckpointError, match="warm_start"):
            QSDNNSearch(lut, _config()).run(resume=warm_ckpt)
        with pytest.raises(CheckpointError, match="warm_start"):
            QSDNNSearch(
                lut, _config(warm_start="stored"), prior=prior
            ).run(resume=cold_ckpt)

    def test_capture_requires_valid_interval(self):
        lut = synthetic_chain_lut(4, 2, seed=0)
        with pytest.raises(ConfigError, match="checkpoint_every"):
            QSDNNSearch(lut, _config()).run(
                checkpoint_every=0, on_checkpoint=lambda c: True
            )

    def test_preempted_error_survives_pickling(self):
        # The local pool raises it inside a ProcessPoolExecutor worker.
        import pickle

        lut = synthetic_chain_lut(4, 2, seed=0)
        ckpt = _capture_at(lut, _config(), 10)
        error = pickle.loads(pickle.dumps(PreemptedError(ckpt)))
        assert isinstance(error, PreemptedError)
        assert error.checkpoint == ckpt


class TestCheckpointingIsFree:
    def test_observer_does_not_perturb_the_search(self):
        """A checkpointing run (callback returning True) is bitwise
        identical to a plain run — capture draws no RNG."""
        lut = synthetic_chain_lut(6, 3, seed=5)
        plain = QSDNNSearch(lut, _config()).run()
        seen = []

        def observe(ckpt: dict):
            seen.append(ckpt["episode"])
            return True

        observed = QSDNNSearch(lut, _config()).run(
            checkpoint_every=7, on_checkpoint=observe
        )
        assert observed.best_ms == plain.best_ms
        assert observed.curve_ms == plain.curve_ms
        assert observed.best_assignments == plain.best_assignments
        assert observed.greedy_ms == plain.greedy_ms
        # Boundaries at multiples of 7, never the final episode.
        assert seen == [e for e in range(7, 60, 7)]


class TestResumeBitwise:
    def test_search_resume_matches_uninterrupted(self):
        lut = synthetic_chain_lut(6, 3, seed=9)
        plain = QSDNNSearch(lut, _config()).run()
        ckpt = _capture_at(lut, _config(), 24)
        resumed = QSDNNSearch(lut, _config()).run(resume=ckpt)
        assert resumed.best_ms == plain.best_ms
        assert resumed.curve_ms == plain.curve_ms
        assert resumed.epsilon_trace == plain.epsilon_trace
        assert resumed.best_assignments == plain.best_assignments
        assert resumed.greedy_ms == plain.greedy_ms

    def test_final_internal_state_matches(self):
        """Beyond the result: the *entire* search state at a later
        boundary (flat Q, ring, RNG streams, best tracking) is equal
        whether or not the run was interrupted in between."""
        lut = synthetic_chain_lut(5, 4, seed=2)
        late: list[dict] = []

        def keep(ckpt: dict):
            late.append(ckpt)
            return True

        QSDNNSearch(lut, _config()).run(checkpoint_every=25, on_checkpoint=keep)
        plain_state = late[-1]
        assert plain_state["episode"] == 50
        early = _capture_at(lut, _config(), 25)
        late.clear()
        QSDNNSearch(lut, _config()).run(
            checkpoint_every=25, on_checkpoint=keep, resume=early
        )
        resumed_state = late[-1]
        assert resumed_state["episode"] == 50
        assert _strip_elapsed(resumed_state) == _strip_elapsed(plain_state)

    def test_double_interruption_composes(self):
        lut = synthetic_chain_lut(5, 3, seed=13)
        plain = QSDNNSearch(lut, _config()).run()
        first = _capture_at(lut, _config(), 10)

        def stop_again(ckpt: dict):
            return ckpt["episode"] < 40

        with pytest.raises(PreemptedError) as exc:
            QSDNNSearch(lut, _config()).run(
                checkpoint_every=1, on_checkpoint=stop_again, resume=first
            )
        second = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        assert second["episode"] == 40
        resumed = QSDNNSearch(lut, _config()).run(resume=second)
        assert resumed.best_ms == plain.best_ms
        assert resumed.curve_ms == plain.curve_ms

    def test_multi_seed_resume_matches(self):
        lut = synthetic_chain_lut(5, 3, seed=21)
        seeds = seed_range(3, 3)
        plain = MultiSeedSearch(lut, _config(), seeds=seeds).run()

        def stop(ckpt: dict):
            return ckpt["episode"] < 30

        with pytest.raises(PreemptedError) as exc:
            MultiSeedSearch(lut, _config(), seeds=seeds).run(
                checkpoint_every=10, on_checkpoint=stop
            )
        ckpt = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        assert [s["seed"] for s in ckpt["seeds"]] == seeds
        resumed = MultiSeedSearch(lut, _config(), seeds=seeds).run(resume=ckpt)
        for a, b in zip(plain.results, resumed.results):
            assert a.best_ms == b.best_ms
            assert a.curve_ms == b.curve_ms
            assert a.best_assignments == b.best_assignments

    @pytest.mark.parametrize("capture_kernel,resume_kernel", [
        ("reference", "mega"),
        ("mega", "reference"),
    ])
    def test_cross_backend_resume(self, capture_kernel, resume_kernel):
        """A checkpoint captured under one backend resumes under
        another, bitwise — the format is backend-neutral."""
        lut = synthetic_chain_lut(5, 3, seed=8)
        seeds = seed_range(0, 3)
        plain = MultiSeedSearch(
            lut, _config(kernel=resume_kernel), seeds=seeds
        ).run()

        def stop(ckpt: dict):
            return ckpt["episode"] < 20

        with pytest.raises(PreemptedError) as exc:
            MultiSeedSearch(
                lut, _config(kernel=capture_kernel), seeds=seeds
            ).run(checkpoint_every=10, on_checkpoint=stop)
        ckpt = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        resumed = MultiSeedSearch(
            lut, _config(kernel=resume_kernel), seeds=seeds
        ).run(resume=ckpt)
        for a, b in zip(plain.results, resumed.results):
            assert a.best_ms == b.best_ms
            assert a.curve_ms == b.curve_ms

    @needs_numba
    @pytest.mark.parametrize("capture_kernel,resume_kernel", [
        ("numba", "reference"),
        ("reference", "numba"),
    ])
    def test_cross_backend_resume_numba(self, capture_kernel, resume_kernel):
        lut = synthetic_chain_lut(5, 3, seed=8)
        plain = QSDNNSearch(lut, _config(kernel=resume_kernel)).run()
        ckpt = _capture_at(lut, _config(kernel=capture_kernel), 20)
        resumed = QSDNNSearch(lut, _config(kernel=resume_kernel)).run(
            resume=ckpt
        )
        assert resumed.best_ms == plain.best_ms
        assert resumed.curve_ms == plain.curve_ms


class TestResumeProperties:
    @given(
        num_layers=st.integers(min_value=2, max_value=6),
        num_actions=st.integers(min_value=2, max_value=4),
        lut_seed=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=100),
        episodes=st.integers(min_value=24, max_value=90),
        boundary=st.integers(min_value=1, max_value=89),
        replay=st.booleans(),
        fvb=st.booleans(),
        warm=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_search_resume_bitwise_anywhere(
        self, num_layers, num_actions, lut_seed, seed, episodes,
        boundary, replay, fvb, warm,
    ):
        """Preempt at *any* episode boundary under any config — warm
        starts included: the resumed run's result is bitwise the
        uninterrupted one's."""
        boundary = 1 + boundary % (episodes - 1)  # in (0, episodes)
        lut = synthetic_chain_lut(num_layers, num_actions, seed=lut_seed)
        prior = None
        if warm:
            from repro.core.priors import SchedulePrior

            probe = QSDNNSearch(
                lut, _config(episodes=8, seed=seed + 1000)
            ).run()
            prior = SchedulePrior(probe.best_assignments)

        def config() -> SearchConfig:
            return _config(
                episodes=episodes, seed=seed,
                replay_enabled=replay, first_visit_bootstrap=fvb,
                warm_start="stored" if warm else "off",
            )

        plain = QSDNNSearch(lut, config(), prior=prior).run()

        def stop(ckpt: dict):
            return ckpt["episode"] < boundary

        with pytest.raises(PreemptedError) as exc:
            QSDNNSearch(lut, config(), prior=prior).run(
                checkpoint_every=1, on_checkpoint=stop
            )
        ckpt = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        assert ckpt["episode"] == boundary
        resumed = QSDNNSearch(lut, config(), prior=prior).run(resume=ckpt)
        assert resumed.best_ms == plain.best_ms
        assert resumed.curve_ms == plain.curve_ms
        assert resumed.best_assignments == plain.best_assignments
        assert resumed.warm_start == ("stored" if warm else "off")

    @given(
        lut_seed=st.integers(min_value=0, max_value=10_000),
        num_seeds=st.integers(min_value=2, max_value=4),
        boundary=st.integers(min_value=1, max_value=59),
        replay=st.booleans(),
        capture_mega=st.booleans(),
        resume_mega=st.booleans(),
        warm=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_multi_seed_cross_backend_resume_bitwise(
        self, lut_seed, num_seeds, boundary, replay, capture_mega,
        resume_mega, warm,
    ):
        lut = synthetic_chain_lut(4, 3, seed=lut_seed)
        seeds = seed_range(0, num_seeds)
        prior = None
        if warm:
            from repro.core.priors import SchedulePrior

            probe = QSDNNSearch(lut, _config(episodes=8, seed=777)).run()
            prior = SchedulePrior(probe.best_assignments)

        def config(mega: bool) -> SearchConfig:
            return _config(
                replay_enabled=replay,
                kernel="mega" if mega else "reference",
                warm_start="stored" if warm else "off",
            )

        def search(mega: bool) -> MultiSeedSearch:
            return MultiSeedSearch(
                lut, config(mega), seeds=seeds, prior=prior
            )

        plain = search(resume_mega).run()

        def stop(ckpt: dict):
            return ckpt["episode"] < boundary

        with pytest.raises(PreemptedError) as exc:
            search(capture_mega).run(checkpoint_every=1, on_checkpoint=stop)
        ckpt = decode_checkpoint(encode_checkpoint(exc.value.checkpoint))
        resumed = search(resume_mega).run(resume=ckpt)
        for a, b in zip(plain.results, resumed.results):
            assert a.best_ms == b.best_ms
            assert a.curve_ms == b.curve_ms
