"""Test helpers: synthetic latency tables with known structure.

A synthetic LUT lets the search/solver tests control the optimization
landscape exactly (and cheaply) instead of going through profiling.
"""

from __future__ import annotations

import numpy as np

from repro.backends.layout import Layout
from repro.engine.lut import LatencyTable, PrimitiveMeta
from repro.hw.processor import ProcessorKind


def synthetic_meta(num_actions: int) -> dict[str, PrimitiveMeta]:
    """Primitive metadata cycling over {CPU, GPU} x {NCHW, NHWC}."""
    metas = {}
    for a in range(num_actions):
        uid = f"prim{a}"
        metas[uid] = PrimitiveMeta(
            uid=uid,
            library=f"lib{a % 3}",
            algorithm="alg",
            impl=str(a),
            blas=None,
            processor=ProcessorKind.GPU if a % 2 else ProcessorKind.CPU,
            layout=Layout.NHWC if (a // 2) % 2 else Layout.NCHW,
        )
    return metas


def synthetic_chain_lut(
    num_layers: int,
    num_actions: int,
    seed: int = 0,
    transfer_scale: float = 1.0,
    conversion_scale: float = 0.5,
) -> LatencyTable:
    """A random chain-network LUT with processor/layout penalties.

    Per-layer times are uniform in [1, 10) ms; the penalty structure is
    derived from the synthetic primitive metadata exactly like a real
    LUT (transfer on processor switch, conversion on layout mismatch).
    """
    rng = np.random.default_rng(seed)
    layers = [f"layer{i}" for i in range(num_layers)]
    meta = synthetic_meta(num_actions)
    uids = list(meta)
    candidates = {l: list(uids) for l in layers}
    times = {
        l: {u: float(rng.uniform(1.0, 10.0)) for u in uids} for l in layers
    }
    edges = [(layers[i], layers[i + 1]) for i in range(num_layers - 1)]
    conversion = {
        e: {
            ProcessorKind.CPU: float(rng.uniform(0.1, 1.0)) * conversion_scale,
            ProcessorKind.GPU: float(rng.uniform(0.1, 1.0)) * conversion_scale,
        }
        for e in edges
    }
    transfer = {e: float(rng.uniform(0.5, 3.0)) * transfer_scale for e in edges}
    return LatencyTable(
        graph_name=f"synthetic{num_layers}x{num_actions}",
        mode="synthetic",
        platform_name="synthetic",
        layers=layers,
        candidates=candidates,
        times_ms=times,
        edges=edges,
        conversion_ms=conversion,
        transfer_ms=transfer,
        meta=meta,
    )


def trap_lut() -> LatencyTable:
    """The Fig. 1 trap, hand-built: greedy picks a locally fastest
    middle primitive whose penalties make the path globally worse.

    Layout: 3 layers, 2 primitives each.  ``prim0`` is CPU/NCHW,
    ``prim1`` is GPU/NHWC.  Layer 1's GPU primitive is the fastest
    single measurement anywhere (1 ms), but reaching it costs a
    transfer (1.5 ms) plus a conversion (1.0 ms) on both edges:

    * all-prim0 (the blue path):    3 + 4 + 3            = 10 ms
    * greedy p0,p1,p0 (red path):   3 + 2.5 + 1 + 2.5 + 3 = 12 ms
    * all-prim1:                    8 + 1 + 8            = 17 ms
    """
    layers = ["l0", "l1", "l2"]
    meta = {
        "prim0": PrimitiveMeta(
            uid="prim0", library="cpu_lib", algorithm="a", impl="", blas=None,
            processor=ProcessorKind.CPU, layout=Layout.NCHW,
        ),
        "prim1": PrimitiveMeta(
            uid="prim1", library="gpu_lib", algorithm="a", impl="", blas=None,
            processor=ProcessorKind.GPU, layout=Layout.NHWC,
        ),
    }
    times = {
        "l0": {"prim0": 3.0, "prim1": 8.0},
        "l1": {"prim0": 4.0, "prim1": 1.0},
        "l2": {"prim0": 3.0, "prim1": 8.0},
    }
    edges = [("l0", "l1"), ("l1", "l2")]
    conversion = {
        e: {ProcessorKind.CPU: 1.0, ProcessorKind.GPU: 1.0} for e in edges
    }
    transfer = {e: 1.5 for e in edges}
    return LatencyTable(
        graph_name="fig1_trap",
        mode="synthetic",
        platform_name="synthetic",
        layers=layers,
        candidates={l: ["prim0", "prim1"] for l in layers},
        times_ms=times,
        edges=edges,
        conversion_ms=conversion,
        transfer_ms=transfer,
        meta=meta,
    )
