"""End-to-end property tests on randomly generated networks.

A hypothesis strategy builds small random-but-valid CNNs; the whole
pipeline (profiling -> LUT -> searches -> deployment) must uphold its
invariants on every one of them, not just on the zoo.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Mode, jetson_tx2
from repro.backends import design_space
from repro.baselines import chain_dp, is_chain, pbqp_solve, random_search
from repro.core import QSDNNSearch, SearchConfig
from repro.engine import Executor, Profiler
from repro.engine.schedule import vanilla_schedule
from repro.nn.builder import NetworkBuilder
from repro.nn.tensor import TensorShape

_QUIET = jetson_tx2(noise_sigma=0.0)
_NOISY = jetson_tx2()


@st.composite
def random_network(draw):
    """A small random valid CNN (chain with an optional branch)."""
    channels = draw(st.sampled_from([1, 3, 8]))
    size = draw(st.sampled_from([8, 12, 16]))
    b = NetworkBuilder(f"rand_{draw(st.integers(0, 10**6))}",
                       TensorShape(channels, size, size))
    depth = draw(st.integers(min_value=2, max_value=6))
    branch_at = draw(st.integers(min_value=-1, max_value=depth - 1))
    for i in range(depth):
        op = draw(st.sampled_from(["conv3", "conv1", "dw", "relu", "bn", "pool"]))
        current = b.output_shape(b.cursor)
        if op == "conv3":
            b.conv(f"l{i}_conv3", out_channels=draw(st.sampled_from([4, 8, 16])),
                   kernel=3, padding=1)
        elif op == "conv1":
            b.conv(f"l{i}_conv1", out_channels=draw(st.sampled_from([4, 8, 16])),
                   kernel=1)
        elif op == "dw":
            b.depthwise(f"l{i}_dw", kernel=3, padding=1)
        elif op == "relu":
            b.relu(f"l{i}_relu")
        elif op == "bn":
            b.batch_norm(f"l{i}_bn")
        elif op == "pool" and current.height >= 4:
            b.pool_max(f"l{i}_pool", kernel=2)
        else:
            b.relu(f"l{i}_relu")
        if i == branch_at:
            trunk = b.cursor
            left = b.conv(f"br{i}_a", out_channels=4, kernel=1, after=trunk)
            right = b.conv(f"br{i}_b", out_channels=4, kernel=1, after=trunk)
            b.concat(f"br{i}_cat", inputs=[left, right])
    b.fc("head", out_channels=10)
    return b.build()


def _profile(graph, platform, repeats=3, seed=0):
    space = design_space(Mode.GPGPU, platform)
    profiler = Profiler(graph, space, platform, seed=seed, repeats=repeats)
    lut, report = profiler.profile()
    return space, lut, report


class TestPipelineProperties:
    @given(graph=random_network())
    @settings(max_examples=12, deadline=None)
    def test_lut_complete_and_positive(self, graph):
        _, lut, report = _profile(graph, _QUIET)
        for layer, uids in lut.candidates.items():
            assert uids, layer
            for uid in uids:
                assert lut.layer_time(layer, uid) > 0
        assert report.network_inferences >= 1
        assert report.compatibility_passes == 1

    @given(graph=random_network(), seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_search_result_consistent(self, graph, seed):
        _, lut, _ = _profile(graph, _QUIET)
        result = QSDNNSearch(
            lut, SearchConfig(episodes=120, seed=seed)
        ).run()
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )
        assert result.best_ms <= random_search(lut, 120, seed=seed).best_ms + 1e-9

    @given(graph=random_network())
    @settings(max_examples=10, deadline=None)
    def test_exact_solvers_agree_on_chains(self, graph):
        _, lut, _ = _profile(graph, _QUIET)
        pb = pbqp_solve(lut)
        assert lut.schedule_time(pb.best_assignments) == pytest.approx(pb.best_ms)
        if is_chain(lut):
            assert pb.best_ms == pytest.approx(chain_dp(lut).best_ms, rel=1e-9)

    @given(graph=random_network())
    @settings(max_examples=8, deadline=None)
    def test_deployment_matches_lut_noiselessly(self, graph):
        space, lut, _ = _profile(graph, _QUIET)
        executor = Executor(graph, space, _QUIET)
        result = QSDNNSearch(lut, SearchConfig(episodes=80, seed=0)).run()
        measured = executor.run(result.schedule()).total_ms
        assert measured == pytest.approx(result.best_ms, rel=1e-9)

    @given(graph=random_network())
    @settings(max_examples=8, deadline=None)
    def test_vanilla_never_beats_search(self, graph):
        space, lut, _ = _profile(graph, _QUIET)
        vanilla = vanilla_schedule(graph, space)
        vanilla_ms = lut.schedule_time(vanilla.assignments)
        result = QSDNNSearch(lut, SearchConfig(episodes=150, seed=0)).run()
        assert result.best_ms <= vanilla_ms + 1e-9

    @given(graph=random_network(), seed=st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_noisy_profiles_stay_close_to_quiet(self, graph, seed):
        _, quiet_lut, _ = _profile(graph, _QUIET, repeats=1, seed=seed)
        _, noisy_lut, _ = _profile(graph, _NOISY, repeats=50, seed=seed)
        for layer in quiet_lut.layers:
            for uid in quiet_lut.candidates[layer]:
                true = quiet_lut.layer_time(layer, uid)
                measured = noisy_lut.layer_time(layer, uid)
                assert measured == pytest.approx(true, rel=0.06)
