"""Tests for the shared cost-model building blocks."""

from __future__ import annotations

import pytest

from repro.backends import cost
from repro.hw import jetson_tx2
from repro.hw.processor import ProcessorKind
from repro.nn.builder import NetworkBuilder
from repro.nn.tensor import TensorShape


@pytest.fixture(scope="module")
def cpu():
    return jetson_tx2().cpu


@pytest.fixture(scope="module")
def gpu():
    return jetson_tx2().processor(ProcessorKind.GPU)


@pytest.fixture(scope="module")
def net():
    b = NetworkBuilder("cost", TensorShape(16, 32, 32))
    b.conv("c3", out_channels=32, kernel=3, padding=1)
    b.conv("c1", out_channels=32, kernel=1)
    b.conv("c5", out_channels=32, kernel=5, padding=2)
    b.conv("c3s2", out_channels=32, kernel=3, stride=2, padding=1)
    b.fc("fc", out_channels=100)
    return b.build()


class TestUtilization:
    def test_ramp_in_unit_interval(self, cpu, gpu):
        for flops in (1e2, 1e5, 1e8, 1e11):
            assert 0 < cost.utilization(flops, cpu) <= 1
            assert 0 < cost.utilization(flops, gpu) <= 1

    def test_cpu_saturates_before_gpu(self, cpu, gpu):
        flops = 1e6
        assert cost.utilization(flops, cpu) > cost.utilization(flops, gpu)

    def test_monotone_in_flops(self, gpu):
        assert cost.utilization(1e7, gpu) < cost.utilization(1e8, gpu)

    def test_zero_flops_small_positive(self, cpu):
        assert 0 < cost.utilization(0, cpu) < 0.01

    def test_ramped_floor(self, gpu):
        assert cost.ramped(0.5, 0.0, gpu) >= 1e-6


class TestChannelRamp:
    def test_monotone(self):
        assert cost.channel_ramp(3, 48) < cost.channel_ramp(512, 48)

    def test_half_point(self):
        assert cost.channel_ramp(48, 48) == pytest.approx(0.5)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            cost.channel_ramp(0, 48)


class TestGemmDims:
    def test_conv_gemm_dims(self, net):
        dims = cost.conv_gemm_dims(net.layer("c3"), net)
        assert dims.m == 32
        assert dims.n == 32 * 32
        assert dims.k == 9 * 16
        assert dims.flops == 2 * 32 * 1024 * 144

    def test_needs_lowering(self, net):
        assert cost.needs_lowering(net.layer("c3"))
        assert not cost.needs_lowering(net.layer("c1"))
        assert cost.needs_lowering(net.layer("c3s2"))


class TestAlgorithms:
    def test_winograd_beats_direct_on_3x3(self, net, cpu):
        layer = net.layer("c3")
        wino = cost.winograd_ms(layer, net, cpu, 0.6, 0.7, 2.5)
        direct = cost.direct_ms(layer, net, cpu, 0.022, 0.3)
        assert wino < direct

    def test_fft_discount_grows_with_kernel(self):
        assert cost.fft_flop_discount(3) < cost.fft_flop_discount(5)
        assert cost.fft_flop_discount(5) < cost.fft_flop_discount(11)

    def test_fft_discount_floor_is_one(self):
        assert cost.fft_flop_discount(2) == 1.0

    def test_kn2row_free_for_1x1(self, net, cpu):
        layer = net.layer("c1")
        dims = cost.conv_gemm_dims(layer, net)
        assert cost.kn2row_extra_ms(layer, dims, cpu, 0.7) == 0.0

    def test_kn2row_costs_for_3x3(self, net, cpu):
        layer = net.layer("c3")
        dims = cost.conv_gemm_dims(layer, net)
        assert cost.kn2row_extra_ms(layer, dims, cpu, 0.7) > 0.0

    def test_lowering_positive(self, net, cpu):
        dims = cost.conv_gemm_dims(net.layer("c3"), net)
        assert cost.lowering_ms(dims, cpu, 0.6) > 0

    def test_gemm_time_positive(self, net, cpu):
        dims = cost.conv_gemm_dims(net.layer("c3"), net)
        assert cost.gemm_ms(dims, cpu, 0.5, 0.7) > 0

    def test_memory_op_includes_extra_overhead(self, net, cpu):
        layer = net.layer("fc")
        base = cost.memory_op_ms(layer, net, cpu, 0.5)
        padded = cost.memory_op_ms(layer, net, cpu, 0.5, extra_overhead_ms=1.0)
        assert padded - base == pytest.approx(1.0)

    def test_gemv_is_memory_bound_for_fat_fc(self, cpu):
        b = NetworkBuilder("fat", TensorShape(256, 6, 6))
        b.fc("fc", out_channels=4096)
        fat = b.build()
        layer = fat.layer("fc")
        ms = cost.gemv_ms(layer, fat, cpu, 0.8, 0.5)
        from repro.nn.flops import layer_weight_bytes

        expected = cpu.memory_ms(
            layer_weight_bytes(layer, fat)
            + sum(s.nbytes for s in fat.input_shapes("fc"))
            + fat.output_shape("fc").nbytes,
            0.8,
        )
        assert ms == pytest.approx(expected + cpu.overhead_ms, rel=1e-6)
