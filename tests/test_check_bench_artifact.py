"""The bench-artifact schema gate (scripts/check_bench_artifact.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_artifact.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_artifact", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_artifact", gate)
_spec.loader.exec_module(gate)


def _valid_artifact(**overrides) -> dict:
    """The shape ``scripts/bench_search.py`` writes (reference leg)."""
    payload = {
        "schema_version": gate.MIN_SCHEMA_VERSION,
        "platform": "jetson_tx2",
        "search_wall_clock_s": {"fig1_toy": 0.12},
        "episodes_per_s": {"fig1_toy": 7500.0},
        "multi_seed": {"fig1_toy": {"mean_ms": 1.0}},
        "mega_batch": {"fig1_toy": {"episodes_per_s": 9000.0}},
        "kernel": {
            "backend": "reference",
            "numba_available": False,
            "speedup": {},
        },
    }
    payload.update(overrides)
    return payload


class TestCheckArtifact:
    def test_valid_reference_artifact_passes(self):
        assert gate.check_artifact(_valid_artifact()) == []

    def test_valid_numba_artifact_passes(self):
        payload = _valid_artifact(
            kernel={
                "backend": "numba",
                "numba_available": True,
                "speedup": {"fig1_toy": 11.0},
            }
        )
        assert gate.check_artifact(payload) == []

    def test_each_missing_section_is_reported(self):
        cases = {
            "search_wall_clock_s": "wall clocks",
            "platform": "platform",
            "multi_seed": "multi_seed",
            "mega_batch": "mega_batch",
            "episodes_per_s": "throughput",
        }
        for field, needle in cases.items():
            payload = _valid_artifact()
            del payload[field]
            problems = gate.check_artifact(payload)
            assert len(problems) == 1, (field, problems)
            assert needle in problems[0]

    def test_old_schema_rejected(self):
        payload = _valid_artifact(schema_version=gate.MIN_SCHEMA_VERSION - 1)
        (problem,) = gate.check_artifact(payload)
        assert "schema too old" in problem

    def test_missing_kernel_section_short_circuits(self):
        payload = _valid_artifact()
        del payload["kernel"]
        (problem,) = gate.check_artifact(payload)
        assert "kernel section" in problem

    def test_unknown_backend_reported(self):
        payload = _valid_artifact()
        payload["kernel"]["backend"] = "cuda"
        problems = gate.check_artifact(payload)
        assert any("unknown kernel backend" in p for p in problems)

    def test_numba_available_must_be_bool(self):
        payload = _valid_artifact()
        payload["kernel"]["numba_available"] = "yes"
        problems = gate.check_artifact(payload)
        assert any("must be a bool" in p for p in problems)

    def test_numba_leg_proof_obligations(self):
        """A numba leg with no recorded speedups or no mega-batch run
        silently proved nothing — the gate must say so."""
        payload = _valid_artifact(
            mega_batch={},
            kernel={
                "backend": "numba",
                "numba_available": True,
                "speedup": {},
            },
        )
        problems = gate.check_artifact(payload)
        assert any("no kernel speedups" in p for p in problems)
        assert any("no mega_batch run" in p for p in problems)

    def test_reference_leg_may_skip_speedups(self):
        payload = _valid_artifact(mega_batch={})
        assert gate.check_artifact(payload) == []


def _warm_entry(**overrides):
    entry = {
        "kind": "stored",
        "cold_best_ms": 15.9,
        "warm_best_ms": 15.9,
        "cold_episodes": 1000,
        "warm_episodes": 500,
        "episodes_to_match": 450,
        "ratio": 0.45,
        "wall_clock_s": 0.08,
    }
    entry.update(overrides)
    return entry


def _warm_artifact(**overrides):
    payload = _valid_artifact(
        schema_version=gate.WARM_SCHEMA_VERSION,
        warm_start={
            "squeezenet_v1.1": _warm_entry(),
            "tiny_yolo_v2": _warm_entry(episodes_to_match=None, ratio=0.5),
        },
    )
    payload.update(overrides)
    return payload


class TestWarmStartSection:
    def test_valid_warm_artifact_passes(self):
        assert gate.check_artifact(_warm_artifact()) == []

    def test_schema_4_artifacts_need_no_warm_section(self):
        assert gate.check_artifact(_valid_artifact()) == []

    def test_schema_5_requires_the_section(self):
        payload = _warm_artifact()
        del payload["warm_start"]
        problems = gate.check_artifact(payload)
        assert any("missing warm_start" in p for p in problems)

    def test_requires_two_held_out_networks(self):
        payload = _warm_artifact(
            warm_start={"tiny_yolo_v2": _warm_entry()}
        )
        problems = gate.check_artifact(payload)
        assert any(">= 2 held-out" in p for p in problems)

    def test_ratio_over_the_bar_fails(self):
        payload = _warm_artifact()
        payload["warm_start"]["tiny_yolo_v2"]["ratio"] = 0.51
        problems = gate.check_artifact(payload)
        assert any("ratio" in p for p in problems)
        # A never-matching run records inf, which JSON can't carry as
        # a number — a null ratio must fail too, not pass vacuously.
        payload["warm_start"]["tiny_yolo_v2"]["ratio"] = None
        assert any("ratio" in p for p in gate.check_artifact(payload))

    def test_warm_worse_than_cold_fails(self):
        payload = _warm_artifact()
        payload["warm_start"]["tiny_yolo_v2"]["warm_best_ms"] = 16.0
        problems = gate.check_artifact(payload)
        assert any("worse than" in p for p in problems)

    def test_unknown_prior_kind_fails(self):
        payload = _warm_artifact()
        payload["warm_start"]["tiny_yolo_v2"]["kind"] = "psychic"
        problems = gate.check_artifact(payload)
        assert any("kind" in p for p in problems)


class TestMain:
    def test_valid_artifact_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(_valid_artifact()))
        assert gate.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_violations_exit_nonzero_one_line_each(self, tmp_path, capsys):
        payload = _valid_artifact()
        del payload["platform"]
        del payload["multi_seed"]
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(payload))
        assert gate.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert out.count("bench artifact:") == 2

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_unparsable_json_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text("{not json")
        assert gate.main([str(path)]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_print_flag_dumps_the_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(_valid_artifact()))
        assert gate.main(["--print", str(path)]) == 0
        assert '"schema_version"' in capsys.readouterr().out


def _service_mode(lease_batch=1, keep_alive=False, wal=False) -> dict:
    return {
        "jobs": 60,
        "jobs_per_s": 80.0,
        "wall_clock_s": 0.75,
        "p50_latency_s": 0.02,
        "p99_latency_s": 0.4,
        "lease_batch": lease_batch,
        "keep_alive": keep_alive,
        "workers": 2,
        "store": {
            "wal": wal,
            "group_commit": 32 if wal else 0,
            "flushes": 7 if wal else 61,
            "rows": 61,
            "flush_total_s": 0.01,
        },
    }


def _valid_service_artifact(**overrides) -> dict:
    """The shape ``benchmarks/bench_service_throughput.py`` writes."""
    payload = {
        "schema_version": gate.SERVICE_MIN_SCHEMA_VERSION,
        "kind": "service_throughput",
        "version": "0.0.0",
        "jobs": 60,
        "network": "fig1_toy",
        "mode": "gpgpu",
        "episodes": 4,
        "modes": {
            "local": _service_mode(lease_batch=0, keep_alive=True),
            "fleet_legacy": _service_mode(),
            "fleet_batched": _service_mode(
                lease_batch=30, keep_alive=True, wal=True
            ),
        },
        "speedup": {"fleet": 5.6},
    }
    payload.update(overrides)
    return payload


class TestCheckServiceArtifact:
    def test_valid_service_artifact_passes(self):
        assert gate.check_service_artifact(_valid_service_artifact()) == []

    def test_wrong_kind_reported(self):
        problems = gate.check_service_artifact(
            _valid_service_artifact(kind="search")
        )
        assert any("kind" in p for p in problems)

    def test_old_schema_rejected(self):
        problems = gate.check_service_artifact(
            _valid_service_artifact(schema_version=0)
        )
        assert any("schema too old" in p for p in problems)

    def test_each_missing_mode_is_reported(self):
        for name in gate.SERVICE_MODES:
            payload = _valid_service_artifact()
            del payload["modes"][name]
            problems = gate.check_service_artifact(payload)
            assert any(name in p for p in problems), name

    def test_nonpositive_throughput_reported(self):
        payload = _valid_service_artifact()
        payload["modes"]["local"]["jobs_per_s"] = 0
        problems = gate.check_service_artifact(payload)
        assert any("local.jobs_per_s" in p for p in problems)

    def test_missing_store_stats_reported(self):
        payload = _valid_service_artifact()
        del payload["modes"]["fleet_batched"]["store"]
        problems = gate.check_service_artifact(payload)
        assert any("store" in p for p in problems)

    def test_legacy_mode_must_actually_be_legacy(self):
        """A refactor that silently benchmarked batched-vs-batched
        must not produce a valid-looking artifact."""
        payload = _valid_service_artifact()
        payload["modes"]["fleet_legacy"]["lease_batch"] = 30
        payload["modes"]["fleet_legacy"]["keep_alive"] = True
        problems = gate.check_service_artifact(payload)
        assert any("one job at a time" in p for p in problems)
        assert any("connection per request" in p for p in problems)

    def test_batched_mode_must_actually_batch(self):
        payload = _valid_service_artifact()
        payload["modes"]["fleet_batched"]["lease_batch"] = 1
        payload["modes"]["fleet_batched"]["keep_alive"] = False
        problems = gate.check_service_artifact(payload)
        assert any("multi-job batches" in p for p in problems)
        assert any("reuse connections" in p for p in problems)

    def test_missing_speedup_reported(self):
        payload = _valid_service_artifact()
        del payload["speedup"]
        problems = gate.check_service_artifact(payload)
        assert any("speedup.fleet" in p for p in problems)

    def test_main_dispatches_on_kind(self, tmp_path, capsys):
        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps(_valid_service_artifact()))
        assert gate.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_main_rejects_broken_service_artifact(self, tmp_path, capsys):
        broken = _valid_service_artifact()
        del broken["modes"]["fleet_batched"]
        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps(broken))
        assert gate.main([str(path)]) == 1
        assert "fleet_batched" in capsys.readouterr().out
