"""The bench-artifact schema gate (scripts/check_bench_artifact.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_artifact.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_artifact", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_artifact", gate)
_spec.loader.exec_module(gate)


def _valid_artifact(**overrides) -> dict:
    """The shape ``scripts/bench_search.py`` writes (reference leg)."""
    payload = {
        "schema_version": gate.MIN_SCHEMA_VERSION,
        "platform": "jetson_tx2",
        "search_wall_clock_s": {"fig1_toy": 0.12},
        "episodes_per_s": {"fig1_toy": 7500.0},
        "multi_seed": {"fig1_toy": {"mean_ms": 1.0}},
        "mega_batch": {"fig1_toy": {"episodes_per_s": 9000.0}},
        "kernel": {
            "backend": "reference",
            "numba_available": False,
            "speedup": {},
        },
    }
    payload.update(overrides)
    return payload


class TestCheckArtifact:
    def test_valid_reference_artifact_passes(self):
        assert gate.check_artifact(_valid_artifact()) == []

    def test_valid_numba_artifact_passes(self):
        payload = _valid_artifact(
            kernel={
                "backend": "numba",
                "numba_available": True,
                "speedup": {"fig1_toy": 11.0},
            }
        )
        assert gate.check_artifact(payload) == []

    def test_each_missing_section_is_reported(self):
        cases = {
            "search_wall_clock_s": "wall clocks",
            "platform": "platform",
            "multi_seed": "multi_seed",
            "mega_batch": "mega_batch",
            "episodes_per_s": "throughput",
        }
        for field, needle in cases.items():
            payload = _valid_artifact()
            del payload[field]
            problems = gate.check_artifact(payload)
            assert len(problems) == 1, (field, problems)
            assert needle in problems[0]

    def test_old_schema_rejected(self):
        payload = _valid_artifact(schema_version=gate.MIN_SCHEMA_VERSION - 1)
        (problem,) = gate.check_artifact(payload)
        assert "schema too old" in problem

    def test_missing_kernel_section_short_circuits(self):
        payload = _valid_artifact()
        del payload["kernel"]
        (problem,) = gate.check_artifact(payload)
        assert "kernel section" in problem

    def test_unknown_backend_reported(self):
        payload = _valid_artifact()
        payload["kernel"]["backend"] = "cuda"
        problems = gate.check_artifact(payload)
        assert any("unknown kernel backend" in p for p in problems)

    def test_numba_available_must_be_bool(self):
        payload = _valid_artifact()
        payload["kernel"]["numba_available"] = "yes"
        problems = gate.check_artifact(payload)
        assert any("must be a bool" in p for p in problems)

    def test_numba_leg_proof_obligations(self):
        """A numba leg with no recorded speedups or no mega-batch run
        silently proved nothing — the gate must say so."""
        payload = _valid_artifact(
            mega_batch={},
            kernel={
                "backend": "numba",
                "numba_available": True,
                "speedup": {},
            },
        )
        problems = gate.check_artifact(payload)
        assert any("no kernel speedups" in p for p in problems)
        assert any("no mega_batch run" in p for p in problems)

    def test_reference_leg_may_skip_speedups(self):
        payload = _valid_artifact(mega_batch={})
        assert gate.check_artifact(payload) == []


class TestMain:
    def test_valid_artifact_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(_valid_artifact()))
        assert gate.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_violations_exit_nonzero_one_line_each(self, tmp_path, capsys):
        payload = _valid_artifact()
        del payload["platform"]
        del payload["multi_seed"]
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(payload))
        assert gate.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert out.count("bench artifact:") == 2

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_unparsable_json_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text("{not json")
        assert gate.main([str(path)]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_print_flag_dumps_the_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_search.json"
        path.write_text(json.dumps(_valid_artifact()))
        assert gate.main(["--print", str(path)]) == 0
        assert '"schema_version"' in capsys.readouterr().out
