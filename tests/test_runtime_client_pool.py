"""Keep-alive data plane: the client's pooled connection and the
server's connection reuse, over real sockets.

The :class:`~repro.runtime.client.ServiceClient` keeps one persistent
connection per client; these tests pin the pooling contract — reuse
across requests, transparent redial after the server reaps an idle
socket, and the no-socket-leak guarantee on every error path (the
regression test for the pre-pooling bug where HTTP-error responses
abandoned their connection object).  The raw-wire tests speak
``http.client`` directly to assert what the *server* promises:
HTTP/1.1 keep-alive by default, honoured ``Connection: close``, and
no reuse after a malformed request (unknown framing).
"""

from __future__ import annotations

import http.client
import time

import pytest

from repro.errors import ServiceError
from repro.runtime.client import ServiceClient
from tests.test_runtime_fleet import LiveFleet, _toy_body


class TestClientPooling:
    def test_keep_alive_reuses_one_connection(self):
        with LiveFleet() as live:
            client = ServiceClient(f"http://127.0.0.1:{live.service.port}")
            try:
                assert client._conn is None  # nothing pooled yet
                client.health()
                first = client._conn
                assert first is not None
                client.health()
                client.submit(_toy_body())
                assert client._conn is first  # same socket, three requests
            finally:
                client.close()

    def test_keep_alive_false_never_pools(self):
        with LiveFleet() as live:
            client = ServiceClient(
                f"http://127.0.0.1:{live.service.port}", keep_alive=False
            )
            try:
                client.health()
                client.health()
                assert client._conn is None
            finally:
                client.close()

    def test_close_releases_the_pooled_connection(self):
        with LiveFleet() as live:
            url = f"http://127.0.0.1:{live.service.port}"
            with ServiceClient(url) as client:
                client.health()
                assert client._conn is not None
                client.close()
                assert client._conn is None
                client.health()  # still usable: redials
                assert client._conn is not None
            assert client._conn is None  # __exit__ closed it again

    def test_transparent_redial_after_server_reaps_idle_socket(
        self, monkeypatch
    ):
        """The server drops idle connections after its read timeout;
        the client's next request must succeed on a fresh dial, not
        surface a RemoteDisconnected."""
        import repro.runtime.service as service_mod

        monkeypatch.setattr(service_mod, "REQUEST_READ_TIMEOUT_S", 0.2)
        with LiveFleet() as live:
            client = ServiceClient(f"http://127.0.0.1:{live.service.port}")
            try:
                client.health()
                reaped = client._conn
                assert reaped is not None
                time.sleep(0.6)  # server reaps the idle keep-alive
                assert client.health()["status"] == "ok"
                assert client._conn is not reaped
            finally:
                client.close()

    def test_error_responses_do_not_leak_sockets(self, monkeypatch):
        """Regression: HTTP-error responses (400s, 404s) used to
        abandon their connection object without closing it, leaking
        one socket per failed request.  Count every connection the
        client dials and assert at most one stays open."""
        dialed = []
        real_connection = http.client.HTTPConnection

        class CountingConnection(real_connection):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                dialed.append(self)

        monkeypatch.setattr(http.client, "HTTPConnection", CountingConnection)
        with LiveFleet() as live:
            client = ServiceClient(f"http://127.0.0.1:{live.service.port}")
            try:
                for index in range(8):
                    with pytest.raises(ServiceError):
                        client.submit({"network": "no_such_network"})
                    with pytest.raises(ServiceError):
                        client.job(f"job-missing-{index}")
                live_sockets = [c for c in dialed if c.sock is not None]
                assert len(live_sockets) <= 1, (
                    f"{len(live_sockets)} of {len(dialed)} dialed "
                    "connections still hold sockets"
                )
            finally:
                client.close()
        assert all(c.sock is None for c in dialed)

    def test_pooled_errors_keep_riding_one_connection(self):
        """404s on a healthy keep-alive stream must not force a
        redial: the response was fully read, so the socket is clean."""
        with LiveFleet() as live:
            client = ServiceClient(f"http://127.0.0.1:{live.service.port}")
            try:
                client.health()
                conn = client._conn
                with pytest.raises(ServiceError):
                    client.job("job-nope")
                assert client._conn is conn
            finally:
                client.close()


class TestServerKeepAliveWire:
    def _request(self, conn, method, path, body=None, headers=None):
        import json

        payload = json.dumps(body).encode() if body is not None else None
        sent = {"Content-Type": "application/json"} if payload else {}
        sent.update(headers or {})
        conn.request(method, path, body=payload, headers=sent)
        response = conn.getresponse()
        raw = response.read()
        return response, raw

    def test_two_requests_ride_one_connection(self):
        with LiveFleet() as live:
            conn = http.client.HTTPConnection(
                "127.0.0.1", live.service.port, timeout=30
            )
            try:
                for _ in range(2):
                    response, _ = self._request(conn, "GET", "/healthz")
                    assert response.status == 200
                    assert not response.will_close
                    assert (
                        response.getheader("Connection").lower()
                        == "keep-alive"
                    )
            finally:
                conn.close()

    def test_explicit_connection_close_is_honoured(self):
        with LiveFleet() as live:
            conn = http.client.HTTPConnection(
                "127.0.0.1", live.service.port, timeout=30
            )
            try:
                response, _ = self._request(
                    conn, "GET", "/healthz", headers={"Connection": "close"}
                )
                assert response.status == 200
                assert response.will_close
                assert response.getheader("Connection").lower() == "close"
            finally:
                conn.close()

    def test_malformed_request_answers_400_and_closes(self):
        """Bad framing means the connection cannot be reused: the 400
        must carry Connection: close."""
        with LiveFleet() as live:
            conn = http.client.HTTPConnection(
                "127.0.0.1", live.service.port, timeout=30
            )
            try:
                conn.request(
                    "POST",
                    "/jobs",
                    body=b"this is not json",
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 400
                assert response.will_close
            finally:
                conn.close()
