"""Unit tests for tensor shapes and layer specifications."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, ShapeError
from repro.nn.layers import Layer
from repro.nn.tensor import DTYPE_BYTES, TensorShape
from repro.nn.types import LayerKind


class TestTensorShape:
    def test_numel(self):
        assert TensorShape(3, 4, 5).numel == 60

    def test_nbytes_fp32(self):
        assert TensorShape(1, 2, 2).nbytes == 4 * DTYPE_BYTES

    def test_spatial(self):
        assert TensorShape(8, 7, 9).spatial == (7, 9)

    def test_flattened(self):
        assert TensorShape(2, 3, 4).flattened() == TensorShape(24, 1, 1)

    def test_with_channels(self):
        assert TensorShape(2, 5, 5).with_channels(7) == TensorShape(7, 5, 5)

    def test_str(self):
        assert str(TensorShape(3, 224, 224)) == "3x224x224"

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ShapeError):
            TensorShape(*bad)

    def test_is_hashable_and_comparable(self):
        assert TensorShape(1, 2, 3) == TensorShape(1, 2, 3)
        assert len({TensorShape(1, 2, 3), TensorShape(1, 2, 3)}) == 1


class TestLayerValidation:
    def test_conv_requires_out_channels(self):
        with pytest.raises(ShapeError):
            Layer(name="c", kind=LayerKind.CONV, inputs=("x",), kernel=3)

    def test_conv_requires_kernel(self):
        with pytest.raises(ShapeError):
            Layer(name="c", kind=LayerKind.CONV, inputs=("x",), out_channels=8)

    def test_depthwise_rejects_out_channels(self):
        with pytest.raises(ShapeError):
            Layer(
                name="d", kind=LayerKind.DEPTHWISE_CONV, inputs=("x",),
                kernel=3, out_channels=8,
            )

    def test_global_pool_rejects_kernel(self):
        with pytest.raises(ShapeError):
            Layer(
                name="p", kind=LayerKind.POOL_AVG, inputs=("x",),
                kernel=2, variant="global",
            )

    def test_concat_needs_two_inputs(self):
        with pytest.raises(GraphError):
            Layer(name="cat", kind=LayerKind.CONCAT, inputs=("x",))

    def test_relu_needs_exactly_one_input(self):
        with pytest.raises(GraphError):
            Layer(name="r", kind=LayerKind.RELU, inputs=("x", "y"))

    def test_input_layer_takes_no_inputs(self):
        with pytest.raises(GraphError):
            Layer(name="i", kind=LayerKind.INPUT, inputs=("x",))

    def test_negative_padding_rejected(self):
        with pytest.raises(ShapeError):
            Layer(
                name="c", kind=LayerKind.CONV, inputs=("x",),
                kernel=3, out_channels=4, padding=-1,
            )

    def test_zero_stride_rejected(self):
        with pytest.raises(ShapeError):
            Layer(
                name="c", kind=LayerKind.CONV, inputs=("x",),
                kernel=3, out_channels=4, stride=0,
            )

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Layer(name="", kind=LayerKind.RELU, inputs=("x",))

    def test_valid_conv_describes_itself(self):
        layer = Layer(
            name="c", kind=LayerKind.CONV, inputs=("x",),
            kernel=3, stride=2, padding=1, out_channels=64,
        )
        desc = layer.describe()
        assert "k3s2p1" in desc and "->64" in desc

    def test_with_inputs_copies(self):
        layer = Layer(name="r", kind=LayerKind.RELU, inputs=("x",))
        moved = layer.with_inputs(("y",))
        assert moved.inputs == ("y",) and layer.inputs == ("x",)

    def test_multi_input_flag(self):
        cat = Layer(name="cat", kind=LayerKind.CONCAT, inputs=("a", "b"))
        assert cat.is_multi_input
        relu = Layer(name="r", kind=LayerKind.RELU, inputs=("a",))
        assert not relu.is_multi_input
