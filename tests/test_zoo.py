"""Tests for the network zoo: canonical shapes, costs and structures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.nn.summary import summarize
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind
from repro.utils.units import gflops, mbytes
from repro.zoo import TABLE2_NETWORKS, available_networks, build_network
from repro.zoo.mobilenet import mobilenet_v1

#: (network, GFLOPs, params MiB) from the original papers / model zoos.
CANONICAL = {
    "lenet5": (0.0046, 1.64),
    "alexnet": (2.28, 238.0),
    "vgg16": (30.96, 528.0),
    "vgg19": (39.28, 548.0),
    "googlenet": (3.19, 26.7),
    "mobilenet_v1": (1.15, 16.2),
    "squeezenet_v1.1": (0.78, 4.7),
    "resnet18": (3.64, 44.6),
    "resnet50": (8.22, 97.6),
}


class TestRegistry:
    def test_all_available_build(self):
        for name in available_networks():
            net = build_network(name)
            assert len(net.layers()) > 0

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            build_network("resnet9000")

    def test_table2_networks_are_available(self):
        assert set(TABLE2_NETWORKS) <= set(available_networks())

    def test_networks_validate(self):
        for name in available_networks():
            build_network(name).validate()


@pytest.mark.parametrize("name,flops,params", [
    (k, v[0], v[1]) for k, v in CANONICAL.items()
])
class TestCanonicalCosts:
    def test_flops_match_published(self, name, flops, params):
        net = build_network(name)
        assert gflops(net.total_flops()) == pytest.approx(flops, rel=0.05)

    def test_params_match_published(self, name, flops, params):
        net = build_network(name)
        assert mbytes(net.total_weight_bytes()) == pytest.approx(params, rel=0.05)


class TestSpecificStructures:
    def test_lenet_output(self):
        net = build_network("lenet5")
        assert net.output_shape("prob") == TensorShape(10, 1, 1)

    def test_alexnet_conv1_is_55x55(self):
        net = build_network("alexnet")
        assert net.output_shape("conv1") == TensorShape(96, 55, 55)

    def test_alexnet_has_lrn(self):
        net = build_network("alexnet")
        kinds = {l.kind for l in net.layers()}
        assert LayerKind.LRN in kinds

    def test_vgg19_has_16_convs(self):
        net = build_network("vgg19")
        convs = [l for l in net.layers() if l.kind is LayerKind.CONV]
        assert len(convs) == 16

    def test_googlenet_feature_ladder(self):
        net = build_network("googlenet")
        assert net.output_shape("pool2/3x3_s2").spatial == (28, 28)
        assert net.output_shape("inception_4e/output").spatial == (14, 14)
        assert net.output_shape("inception_5b/output") == TensorShape(1024, 7, 7)

    def test_googlenet_inception_branch_count(self):
        net = build_network("googlenet")
        concat = net.layer("inception_3a/output")
        assert len(concat.inputs) == 4
        assert net.output_shape("inception_3a/output").channels == 256

    def test_mobilenet_has_13_depthwise(self):
        net = build_network("mobilenet_v1")
        dws = [l for l in net.layers() if l.kind is LayerKind.DEPTHWISE_CONV]
        assert len(dws) == 13

    def test_mobilenet_width_multiplier_scales(self):
        half = mobilenet_v1(width_multiplier=0.5)
        assert half.output_shape("conv1").channels == 16
        assert half.total_flops() < build_network("mobilenet_v1").total_flops()

    def test_mobilenet_bad_multiplier(self):
        with pytest.raises(ConfigError):
            mobilenet_v1(width_multiplier=0.0)

    def test_squeezenet_fire_concat(self):
        net = build_network("squeezenet_v1.1")
        assert net.output_shape("fire2/concat").channels == 128

    def test_resnet18_residual_joins(self):
        net = build_network("resnet18")
        adds = [l for l in net.layers() if l.kind is LayerKind.ELTWISE_ADD]
        assert len(adds) == 8  # two blocks per stage, four stages

    def test_resnet50_bottleneck_expansion(self):
        net = build_network("resnet50")
        assert net.output_shape("layer1/block0/conv3").channels == 256

    def test_resnet_downsample_only_where_needed(self):
        net = build_network("resnet18")
        assert "layer1/block1/downsample" not in net
        assert "layer2/block0/downsample" in net

    def test_tiny_yolo_head(self):
        net = build_network("tiny_yolo_v2")
        assert net.output_shape("conv9") == TensorShape(125, 13, 13)

    def test_tiny_yolo_leaky_activations(self):
        net = build_network("tiny_yolo_v2")
        assert net.layer("leaky1").variant == "leaky"

    def test_spherenet_embedding(self):
        net = build_network("spherenet20")
        assert net.output_shape("fc5") == TensorShape(512, 1, 1)

    def test_spherenet_input_aspect(self):
        net = build_network("spherenet20")
        assert net.input_shape == TensorShape(3, 112, 96)

    def test_toy_is_three_layers(self):
        net = build_network("fig1_toy")
        assert len(net.layers()) == 3

    def test_resnet34_deeper_than_18(self):
        assert len(build_network("resnet34").layers()) > len(
            build_network("resnet18").layers()
        )

    def test_ssd_mobilenet_six_detection_taps(self):
        net = build_network("ssd_mobilenet")
        scores = net.layer("mbox_conf")
        boxes = net.layer("mbox_loc")
        assert len(scores.inputs) == 6 and len(boxes.inputs) == 6
        assert net.output_layer.name == "detection_out"

    def test_ssd_mobilenet_anchor_channels(self):
        net = build_network("ssd_mobilenet")
        # First tap: 3 anchors x 21 classes; later taps: 6 x 21.
        assert net.output_shape("cls0").channels == 3 * 21
        assert net.output_shape("cls1").channels == 6 * 21
        assert net.output_shape("box0").channels == 3 * 4

    def test_mtcnn_pnet_fully_convolutional(self):
        net = build_network("mtcnn_pnet")
        kinds = {l.kind for l in net.layers()}
        assert LayerKind.FULLY_CONNECTED not in kinds
        assert net.output_shape("conv4_1") == TensorShape(2, 1, 1)

    def test_mtcnn_cascade_grows(self):
        pnet = build_network("mtcnn_pnet")
        rnet = build_network("mtcnn_rnet")
        onet = build_network("mtcnn_onet")
        assert pnet.total_flops() < rnet.total_flops() < onet.total_flops()

    def test_mtcnn_nets_are_tiny(self):
        for name in ("mtcnn_pnet", "mtcnn_rnet", "mtcnn_onet"):
            assert build_network(name).total_flops() < 50e6

    def test_chain_networks_have_no_branches(self):
        for name in ("lenet5", "alexnet", "vgg16", "vgg19", "mobilenet_v1",
                     "tiny_yolo_v2", "fig1_toy"):
            net = build_network(name)
            for layer in net.layers():
                assert len(layer.inputs) == 1


class TestSummary:
    def test_summary_renders_every_layer(self):
        net = build_network("lenet5")
        text = summarize(net)
        for layer in net.layers():
            assert layer.name in text

    def test_summary_totals_line(self):
        assert "GFLOPs" in summarize(build_network("lenet5"))
