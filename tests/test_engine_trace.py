"""Tests for execution traces."""

from __future__ import annotations

import json

import pytest

from repro import Mode, jetson_tx2
from repro.backends import gpgpu_space
from repro.engine import Executor
from repro.engine.schedule import primitive_type_schedule, vanilla_schedule
from repro.engine.trace import (
    build_trace,
    chrome_trace_json,
    lane_totals,
    render_timeline,
)
from repro.zoo import build_network


@pytest.fixture(scope="module")
def setup():
    platform = jetson_tx2(noise_sigma=0.0)
    graph = build_network("lenet5")
    space = gpgpu_space(platform)
    executor = Executor(graph, space, platform)
    return graph, space, executor


class TestBuildTrace:
    def test_one_event_per_layer_vanilla(self, setup):
        graph, space, executor = setup
        result = executor.run(vanilla_schedule(graph, space))
        events = build_trace(graph, space, result)
        assert len(events) == len(graph.layers())  # no penalties

    def test_events_are_contiguous(self, setup):
        graph, space, executor = setup
        result = executor.run(vanilla_schedule(graph, space))
        events = build_trace(graph, space, result)
        clock = 0.0
        for event in events:
            assert event.start_ms == pytest.approx(clock)
            clock += event.duration_ms

    def test_total_matches_execution(self, setup):
        graph, space, executor = setup
        schedule = primitive_type_schedule(
            graph, space, space.primitive("cudnn.implicit_gemm.precomp")
        )
        result = executor.run(schedule)
        events = build_trace(graph, space, result)
        end = events[-1].start_ms + events[-1].duration_ms
        assert end == pytest.approx(result.total_ms)

    def test_penalty_events_for_mixed_schedule(self, setup):
        graph, space, executor = setup
        schedule = primitive_type_schedule(
            graph, space, space.primitive("cudnn.implicit_gemm.precomp")
        )
        result = executor.run(schedule)
        events = build_trace(graph, space, result)
        lanes = {e.lane for e in events}
        assert "penalty" in lanes and "gpu" in lanes and "cpu" in lanes

    def test_lane_totals_sum_to_total(self, setup):
        graph, space, executor = setup
        schedule = primitive_type_schedule(
            graph, space, space.primitive("cudnn.implicit_gemm.precomp")
        )
        result = executor.run(schedule)
        totals = lane_totals(build_trace(graph, space, result))
        assert sum(totals.values()) == pytest.approx(result.total_ms)


class TestRendering:
    def test_timeline_mentions_layers(self, setup):
        graph, space, executor = setup
        result = executor.run(vanilla_schedule(graph, space))
        text = render_timeline(build_trace(graph, space, result))
        assert "conv1" in text and "total" in text

    def test_empty_trace(self):
        assert render_timeline([]) == "(empty trace)"

    def test_chrome_trace_parses(self, setup):
        graph, space, executor = setup
        result = executor.run(vanilla_schedule(graph, space))
        payload = json.loads(
            chrome_trace_json(build_trace(graph, space, result))
        )
        assert len(payload["traceEvents"]) == len(graph.layers())
        event = payload["traceEvents"][0]
        assert event["ph"] == "X" and event["dur"] > 0
