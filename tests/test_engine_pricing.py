"""The unified pricing engine: CostEngine vs. every other pricer.

The engine is the single source of truth for the search objective, so
these tests pin it against the two independent references:

* the executor's analytic cost model (board-side pricing), on *every*
  zoo network in *both* modes — the acceptance bar of the engine;
* the LUT's dict-walking ``schedule_time`` (search-side pricing).

Plus the structural properties batch pricing must satisfy: pricing B
schedules at once is exactly B single prices, and ``layer_costs`` sums
to the total.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.registry import Mode, design_space
from repro.engine.executor import Executor
from repro.engine.pricing import CostEngine
from repro.engine.schedule import NetworkSchedule
from repro.errors import ScheduleError
from repro.hw import jetson_tx2
from repro.hw.presets import cpu_only
from repro.zoo import available_networks, build_network

from tests.helpers import synthetic_chain_lut, trap_lut

#: Shared noiseless platform — model pricing must be exact, not noisy.
_QUIET = jetson_tx2(noise_sigma=0.0)

#: (executor, engine) per (network, mode), compiled once per session.
_MODEL_CACHE: dict[tuple[str, str], tuple[Executor, CostEngine]] = {}


def _model(network: str, mode: Mode) -> tuple[Executor, CostEngine]:
    key = (network, str(mode))
    if key not in _MODEL_CACHE:
        platform = _QUIET if mode is Mode.GPGPU else cpu_only(_QUIET)
        graph = build_network(network)
        space = design_space(mode, platform)
        executor = Executor(graph, space, platform)
        _MODEL_CACHE[key] = (executor, executor.engine())
    return _MODEL_CACHE[key]


def _random_choices(engine: CostEngine, rng: np.random.Generator) -> np.ndarray:
    return np.array(
        [rng.integers(n) for n in engine.num_actions], dtype=np.int64
    )


class TestEngineMatchesExecutor:
    """Acceptance: engine pricing == board pricing on every zoo network."""

    @pytest.mark.parametrize("network", available_networks())
    @pytest.mark.parametrize("mode", [Mode.CPU, Mode.GPGPU])
    def test_price_matches_executor_run(self, network, mode):
        executor, engine = _model(network, mode)
        rng = np.random.default_rng(hash((network, str(mode))) % 2**32)
        batch = np.stack([_random_choices(engine, rng) for _ in range(3)])
        batch_totals = engine.price_batch(batch)
        for k, choices in enumerate(batch):
            schedule = NetworkSchedule(network, engine.assignments(choices))
            measured = executor.run(schedule)  # noiseless: exact model time
            assert engine.price(choices) == pytest.approx(
                measured.total_ms, abs=1e-9
            )
            # Batch pricing is single pricing (to reduction-order ulps).
            assert batch_totals[k] == pytest.approx(
                engine.price(choices), rel=1e-12
            )

    @pytest.mark.parametrize("mode", [Mode.CPU, Mode.GPGPU])
    def test_per_layer_and_per_edge_breakdowns(self, mode):
        executor, engine = _model("lenet5", mode)
        rng = np.random.default_rng(7)
        choices = _random_choices(engine, rng)
        schedule = NetworkSchedule("lenet5", engine.assignments(choices))
        measured = executor.run(schedule)
        times = engine.gather_layer_times(choices)
        for name, t in zip(engine.layer_names, times):
            assert measured.layer_ms[name] == pytest.approx(float(t), abs=1e-12)
        penalties = engine.gather_edge_penalties(choices)
        for edge, p in zip(engine.edges, penalties):
            assert measured.penalty_ms.get(edge, 0.0) == pytest.approx(
                float(p), abs=1e-12
            )


class TestEngineMatchesLut:
    def test_price_matches_schedule_time(self, lenet_lut_gpgpu):
        engine = lenet_lut_gpgpu.engine()
        rng = np.random.default_rng(3)
        for _ in range(25):
            choices = _random_choices(engine, rng)
            assert engine.price(choices) == pytest.approx(
                lenet_lut_gpgpu.schedule_time(engine.assignments(choices)),
                abs=1e-9,
            )

    def test_layer_costs_sum_to_price(self, squeezenet_lut_gpgpu):
        engine = squeezenet_lut_gpgpu.engine()
        rng = np.random.default_rng(4)
        for _ in range(10):
            choices = _random_choices(engine, rng)
            assert engine.layer_costs(choices).sum() == pytest.approx(
                engine.price(choices), rel=1e-12
            )

    def test_trap_prices(self):
        engine = trap_lut().engine()
        assert engine.price([0, 0, 0]) == pytest.approx(10.0)
        assert engine.price([0, 1, 0]) == pytest.approx(12.0)
        assert engine.price([1, 1, 1]) == pytest.approx(17.0)


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_batch_equals_singles_hypothesis(self, data):
        """price_batch == N x price, on random synthetic problems."""
        num_layers = data.draw(st.integers(2, 10), label="layers")
        num_actions = data.draw(st.integers(1, 8), label="actions")
        seed = data.draw(st.integers(0, 999), label="seed")
        lut = synthetic_chain_lut(num_layers, num_actions, seed=seed)
        engine = lut.engine()
        rows = data.draw(
            st.lists(
                st.lists(
                    st.integers(0, num_actions - 1),
                    min_size=num_layers,
                    max_size=num_layers,
                ),
                min_size=1,
                max_size=8,
            ),
            label="choices",
        )
        batch = np.array(rows, dtype=np.int64)
        totals = engine.price_batch(batch)
        for k, choices in enumerate(batch):
            assert totals[k] == pytest.approx(engine.price(choices), rel=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_price_matches_executor_hypothesis(self, data):
        """Random schedules on real (small) networks price like the board."""
        network = data.draw(
            st.sampled_from(["fig1_toy", "lenet5", "mobilenet_v1"]),
            label="network",
        )
        mode = data.draw(st.sampled_from([Mode.CPU, Mode.GPGPU]), label="mode")
        executor, engine = _model(network, mode)
        choices = np.array(
            [
                data.draw(st.integers(0, int(n) - 1))
                for n in engine.num_actions
            ],
            dtype=np.int64,
        )
        schedule = NetworkSchedule(network, engine.assignments(choices))
        measured = executor.run(schedule)
        assert engine.price(choices) == pytest.approx(
            measured.total_ms, abs=1e-9
        )

    def test_roundtrip_choices_assignments(self):
        lut = synthetic_chain_lut(5, 4, seed=9)
        engine = lut.engine()
        rng = np.random.default_rng(0)
        for _ in range(10):
            choices = _random_choices(engine, rng)
            again = engine.choices_of(engine.assignments(choices))
            assert (again == choices).all()

    def test_rejects_bad_shapes_and_uids(self):
        engine = synthetic_chain_lut(4, 3, seed=1).engine()
        with pytest.raises(ScheduleError):
            engine.price_batch(np.zeros((2, 99), dtype=np.int64))
        with pytest.raises(ScheduleError):
            engine.choices_of({})
        with pytest.raises(ScheduleError):
            engine.choices_of(
                {name: "no-such-uid" for name in engine.layer_names}
            )

    def test_move_costs_are_exact_deltas(self):
        lut = synthetic_chain_lut(6, 4, seed=2)
        engine = lut.engine()
        rng = np.random.default_rng(1)
        choices = _random_choices(engine, rng)
        base = engine.price(choices)
        for layer in range(len(engine)):
            costs = engine.move_costs(choices, layer)
            for action in range(int(engine.num_actions[layer])):
                flipped = choices.copy()
                flipped[layer] = action
                assert base + (costs[action] - costs[choices[layer]]) == (
                    pytest.approx(engine.price(flipped), rel=1e-12)
                )
                assert engine.delta_ms(choices, layer, action) == (
                    pytest.approx(engine.price(flipped) - base, abs=1e-9)
                )
