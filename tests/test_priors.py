"""The pluggable Q-prior layer: warm starts from the result corpus.

Three layers of proof.  Core: priors produce finite, correctly-shaped
flat Q blocks, ``warm_start="off"`` stays bitwise-identical to a build
without the subsystem, and every exactness contract (lockstep ==
independent, mega == fused) survives a warm start.  Transport: specs
round-trip float-exactly, resolve from job identity alone, and unfit
schedules degrade to cold starts instead of failing.  Runtime: the
store keys/payloads, campaign jobs, and service bodies carry the knob
— and only when it is set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiSeedSearch, QSDNNSearch, SearchConfig, seed_range
from repro.core.priors import (
    PRIOR_SPEC_FORMAT,
    SchedulePrior,
    StoredQPrior,
    SurrogatePrior,
    WeightsPrior,
    ZeroPrior,
    decode_prior_spec,
    encode_prior_spec,
    make_prior,
    prior_row_max,
    q_layout,
    resolve_prior_spec,
    validate_warm_start,
)
from repro.errors import ConfigError

from tests.helpers import synthetic_chain_lut, trap_lut


def _config(**overrides) -> SearchConfig:
    fields = dict(episodes=60, seed=3, polish_sweeps=0, kernel="reference")
    fields.update(overrides)
    return SearchConfig(**fields)


def _schedule_prior(lut, episodes: int = 20, seed: int = 99) -> SchedulePrior:
    """A stored-style prior mined from a quick probe run on ``lut``."""
    probe = QSDNNSearch(lut, _config(episodes=episodes, seed=seed)).run()
    return SchedulePrior(probe.best_assignments)


class _FakeRow:
    def __init__(self, job, payload):
        self.job = job
        self.payload = payload


class _FakeStore:
    """Duck-typed stand-in for ``ResultStore.query`` over synthetic jobs."""

    def __init__(self, rows):
        self._rows = list(rows)

    def query(self, network=None, platform=None, mode=None):
        return [
            r for r in self._rows
            if (network is None or r.job.network == network)
            and (platform is None or r.job.platform == platform)
            and (mode is None or r.job.mode == mode)
        ]


class _Job:
    def __init__(self, network, platform="synthetic", mode="synthetic"):
        self.network = network
        self.platform = platform
        self.mode = mode


class TestValidation:
    def test_accepts_every_choice(self):
        for kind in ("off", "stored", "surrogate"):
            assert validate_warm_start(kind) == kind

    def test_rejects_unknown(self):
        with pytest.raises(ConfigError, match="warm_start"):
            validate_warm_start("hot")
        with pytest.raises(ConfigError, match="warm_start"):
            SearchConfig(episodes=10, warm_start="hot")


class TestPriorBlocks:
    def test_zero_prior_is_cold(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        assert ZeroPrior().prior_for(lut) is None
        assert ZeroPrior().spec_text(lut) is None

    def test_schedule_prior_shape_and_finiteness(self):
        lut = synthetic_chain_lut(5, 4, seed=2)
        idx = lut.indexed()
        values = _schedule_prior(lut).prior_for(lut)
        num_actions, row_sizes = q_layout(idx)
        assert values.shape == (
            sum(r * n for r, n in zip(row_sizes, num_actions)),
        )
        assert np.all(np.isfinite(values))
        assert np.all(values <= 0.0)  # negative-tailed optimism

    def test_prior_row_max_matches_blockwise_max(self):
        lut = synthetic_chain_lut(4, 3, seed=5)
        idx = lut.indexed()
        values = _schedule_prior(lut).prior_for(lut)
        num_actions, row_sizes = q_layout(idx)
        rm = prior_row_max(values, num_actions, row_sizes)
        pos = out = 0
        for n, r in zip(num_actions, row_sizes):
            block = values[pos : pos + r * n].reshape(r, n)
            assert np.array_equal(rm[out : out + r], block.max(axis=1))
            pos += r * n
            out += r

    def test_unfit_schedule_degrades_to_cold(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        probe = _schedule_prior(lut)
        # Missing layer: schedules from a smaller network don't fit.
        partial = dict(probe.assignments)
        del partial["layer3"]
        assert SchedulePrior(partial).prior_for(lut) is None
        # Unknown uid: a corpus entry predating a design-space change.
        stale = dict(probe.assignments, layer0="prim_gone")
        assert SchedulePrior(stale).prior_for(lut) is None

    def test_trap_prior_prefers_the_stored_path(self):
        """Seeding from the globally-best schedule makes the greedy
        first action the stored one at the start state."""
        lut = trap_lut()
        idx = lut.indexed()
        prior = SchedulePrior(
            {"l0": "prim0", "l1": "prim0", "l2": "prim0"}
        )
        values = prior.prior_for(lut)
        num_actions, row_sizes = q_layout(idx)
        first_row = values[: num_actions[0]]
        assert int(np.argmax(first_row)) == 0  # prim0, the blue path


class TestBitwiseContracts:
    def test_off_is_bitwise_identical_to_plain(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        plain = QSDNNSearch(lut, _config()).run()
        off = QSDNNSearch(
            lut, _config(warm_start="off"), prior=ZeroPrior()
        ).run()
        assert off.best_ms == plain.best_ms
        assert off.curve_ms == plain.curve_ms
        assert off.warm_start == "off"

    def test_warm_result_carries_the_kind(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        warm = QSDNNSearch(
            lut, _config(warm_start="stored"), prior=_schedule_prior(lut)
        ).run()
        assert warm.warm_start == "stored"
        assert np.isfinite(warm.best_ms)

    def test_warm_lockstep_equals_warm_independent(self):
        lut = synthetic_chain_lut(4, 3, seed=11)
        prior = _schedule_prior(lut)
        seeds = seed_range(0, 3)
        multi = MultiSeedSearch(
            lut, _config(warm_start="stored"), seeds=seeds, prior=prior
        ).run()
        for seed, member in zip(seeds, multi.results):
            solo = QSDNNSearch(
                lut, _config(seed=seed, warm_start="stored"), prior=prior
            ).run()
            assert member.best_ms == solo.best_ms
            assert member.curve_ms == solo.curve_ms

    def test_warm_mega_equals_warm_fused(self):
        lut = synthetic_chain_lut(4, 3, seed=13)
        prior = _schedule_prior(lut)
        seeds = seed_range(0, 3)

        def run(kernel: str):
            return MultiSeedSearch(
                lut,
                _config(
                    warm_start="stored", kernel=kernel,
                    replay_enabled=False,
                ),
                seeds=seeds,
                prior=prior,
            ).run()

        fused = run("reference")
        mega = run("mega")
        for a, b in zip(fused.results, mega.results):
            assert a.best_ms == b.best_ms
            assert a.curve_ms == b.curve_ms


class TestSpecTransport:
    def test_stored_spec_round_trips(self):
        lut = synthetic_chain_lut(4, 3, seed=17)
        prior = _schedule_prior(lut)
        revived = decode_prior_spec(prior.spec_text())
        assert isinstance(revived, SchedulePrior)
        assert np.array_equal(revived.prior_for(lut), prior.prior_for(lut))

    def test_surrogate_spec_round_trips_floats_bitwise(self):
        weights = np.array([0.1, -1.0 / 3.0, 5e-324, 2.5])
        prior = WeightsPrior(weights, ("lib0", "lib1"))
        revived = decode_prior_spec(prior.spec_text())
        assert isinstance(revived, WeightsPrior)
        assert np.array_equal(revived.weights, weights)
        assert revived.libraries == ("lib0", "lib1")

    def test_decode_rejects_junk(self):
        with pytest.raises(ConfigError, match="malformed"):
            decode_prior_spec("{not json")
        with pytest.raises(ConfigError, match="format"):
            decode_prior_spec(
                '{"format":99,"kind":"stored","assignments":{}}'
            )
        with pytest.raises(ConfigError, match="kind"):
            decode_prior_spec(
                encode_prior_spec({"kind": "psychic"})
            )

    def test_spec_format_is_stamped(self):
        text = SchedulePrior({"l0": "prim0"}).spec_text()
        import json

        assert json.loads(text)["format"] == PRIOR_SPEC_FORMAT


class TestCorpusResolution:
    def _store_with(self, lut, episodes=20, seed=99):
        probe = QSDNNSearch(lut, _config(episodes=episodes, seed=seed)).run()
        return _FakeStore(
            [_FakeRow(_Job(lut.graph_name), probe)]
        ), probe

    def test_stored_prior_resolves_by_identity(self):
        lut = synthetic_chain_lut(4, 3, seed=19)
        store, probe = self._store_with(lut)
        prior = StoredQPrior(store)
        assert prior.prior_for(lut) is not None
        schedule = prior._schedule(lut.graph_name, "synthetic", "synthetic")
        assert schedule.assignments == probe.best_assignments

    def test_stored_prior_picks_the_best_of_many(self):
        lut = synthetic_chain_lut(4, 3, seed=19)
        runs = [
            QSDNNSearch(lut, _config(episodes=15, seed=s)).run()
            for s in (1, 2, 3)
        ]
        store = _FakeStore(
            [_FakeRow(_Job(lut.graph_name), r) for r in runs]
        )
        best = min(runs, key=lambda r: r.best_ms)
        schedule = StoredQPrior(store)._schedule(
            lut.graph_name, "synthetic", "synthetic"
        )
        assert schedule.assignments == best.best_assignments

    def test_empty_corpus_runs_cold(self):
        lut = synthetic_chain_lut(4, 3, seed=19)
        assert StoredQPrior(_FakeStore([])).prior_for(lut) is None
        assert (
            resolve_prior_spec(
                "stored", lut.graph_name, "synthetic", "synthetic",
                _FakeStore([]),
            )
            is None
        )

    def test_surrogate_excludes_the_target_network(self):
        target = synthetic_chain_lut(4, 3, seed=23)
        luts = {
            lut.graph_name: lut
            for lut in (
                target,
                synthetic_chain_lut(5, 3, seed=29),
                synthetic_chain_lut(6, 3, seed=31),
            )
        }
        rows = []
        for name, lut in luts.items():
            probe = QSDNNSearch(lut, _config(episodes=10, seed=1)).run()
            rows.append(_FakeRow(_Job(name), probe))
        resolved = []

        def resolver(job):
            resolved.append(job.network)
            return luts[job.network]

        prior = SurrogatePrior(_FakeStore(rows), resolver)
        assert prior.prior_for(target) is not None
        assert target.graph_name not in resolved
        assert len(resolved) == 2

    def test_surrogate_without_corpus_luts_runs_cold(self):
        target = synthetic_chain_lut(4, 3, seed=23)
        probe = QSDNNSearch(target, _config(episodes=10)).run()
        store = _FakeStore([_FakeRow(_Job("other"), probe)])
        prior = SurrogatePrior(store, lambda job: None)
        assert prior.prior_for(target) is None

    def test_resolve_prior_spec_identity_only(self):
        lut = synthetic_chain_lut(4, 3, seed=19)
        store, probe = self._store_with(lut)
        text = resolve_prior_spec(
            "stored", lut.graph_name, "synthetic", "synthetic", store
        )
        revived = decode_prior_spec(text)
        assert revived.assignments == probe.best_assignments
        assert (
            resolve_prior_spec(
                "off", lut.graph_name, "synthetic", "synthetic", store
            )
            is None
        )
        with pytest.raises(ConfigError, match="warm_start"):
            resolve_prior_spec(
                "hot", lut.graph_name, "synthetic", "synthetic", store
            )

    def test_make_prior_degrades_without_a_store(self):
        assert isinstance(make_prior("off"), ZeroPrior)
        assert isinstance(make_prior("stored"), ZeroPrior)
        assert isinstance(make_prior("surrogate"), ZeroPrior)
        store = _FakeStore([])
        assert isinstance(make_prior("stored", store), StoredQPrior)
        assert isinstance(make_prior("surrogate", store), SurrogatePrior)


class TestRuntimeThreading:
    def test_job_key_appends_warm_segment_only_when_set(self):
        from repro.runtime.campaign import CampaignJob
        from repro.runtime.store import job_key

        cold = CampaignJob(network="fig1_toy", kind="search")
        warm = CampaignJob(
            network="fig1_toy", kind="search", warm_start="stored"
        )
        assert "warm" not in job_key(cold)
        assert job_key(warm) == job_key(cold) + "/warm-stored"

    def test_campaign_job_rejects_warm_on_unwarmable_kinds(self):
        from repro.runtime.campaign import CampaignJob

        with pytest.raises(ConfigError, match="warm_start"):
            CampaignJob(
                network="fig1_toy", kind="table2", warm_start="stored"
            )
        with pytest.raises(ConfigError, match="warm_start"):
            CampaignJob(
                network="fig1_toy", kind="search", warm_start="hot"
            )

    def test_search_result_payload_round_trips_warm_start(self):
        from repro.runtime.store import decode_payload, encode_payload

        lut = synthetic_chain_lut(3, 2, seed=1)
        warm = QSDNNSearch(
            lut, _config(episodes=10, warm_start="stored"),
            prior=_schedule_prior(lut, episodes=5),
        ).run()
        kind, text = encode_payload(warm)
        assert decode_payload(kind, text).warm_start == "stored"
        # Pre-PR payload text (no warm_start key) decodes as cold.
        import json

        body = json.loads(text)
        del body["warm_start"]
        assert decode_payload(kind, json.dumps(body)).warm_start == "off"

    def test_execute_job_applies_warm_text_and_counts_it(self):
        from repro.runtime.campaign import CampaignJob, execute_job
        from repro.runtime.metrics import DEFAULT_REGISTRY

        job = CampaignJob(
            network="fig1_toy", mode="cpu", episodes=12, kind="search",
            warm_start="stored",
        )
        cold = execute_job(
            CampaignJob(
                network="fig1_toy", mode="cpu", episodes=40, kind="search"
            )
        )
        warm_text = SchedulePrior(
            cold.payload.best_assignments
        ).spec_text()

        def warm_total():
            for sample in DEFAULT_REGISTRY.render().splitlines():
                if sample.startswith(
                    'repro_warm_starts_total{kind="stored"}'
                ):
                    return float(sample.rsplit(" ", 1)[1])
            return 0.0

        before = warm_total()
        result = execute_job(job, warm_text=warm_text)
        assert result.payload.warm_start == "stored"
        assert warm_total() == before + 1.0

    def test_execute_job_runs_cold_without_warm_text(self):
        from repro.runtime.campaign import CampaignJob, execute_job

        warm_job = CampaignJob(
            network="fig1_toy", mode="cpu", episodes=12, kind="search",
            warm_start="stored",
        )
        cold_job = CampaignJob(
            network="fig1_toy", mode="cpu", episodes=12, kind="search"
        )
        warm = execute_job(warm_job)  # no spec reached the worker
        cold = execute_job(cold_job)
        assert warm.payload.best_ms == cold.payload.best_ms
        assert warm.payload.curve_ms == cold.payload.curve_ms
        # The *requested* kind is still recorded for observability.
        assert warm.payload.warm_start == "stored"

    @pytest.mark.parametrize("kind,method", [
        ("linear-q", "linear-q"),
        ("mlp-q", "mlp-q"),
    ])
    def test_approx_q_job_kinds(self, kind, method):
        from repro.runtime.campaign import CampaignJob, execute_job

        job = CampaignJob(
            network="fig1_toy", mode="cpu", episodes=10, kind=kind
        )
        result = execute_job(job)
        assert result.payload.method == method
        assert np.isfinite(result.payload.best_ms)

    def test_service_body_accepts_warm_start(self):
        from repro.runtime.service import jobs_from_body

        jobs, _ = jobs_from_body(
            {"network": "fig1_toy", "warm_start": "stored"}
        )
        assert jobs[0].warm_start == "stored"
        jobs, _ = jobs_from_body(
            {"networks": ["fig1_toy"], "warm_start": "surrogate"}
        )
        assert jobs[0].warm_start == "surrogate"
        with pytest.raises(ConfigError):
            jobs_from_body(
                {"network": "fig1_toy", "warm_start": "hot"}
            )
