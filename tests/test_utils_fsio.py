"""Crash-safe file publication (tmp-then-replace)."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.utils.fsio import atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "deep" / "er" / "out.json"
        returned = atomic_write_text(target, '{"a": 1}')
        assert returned == target
        assert target.read_text() == '{"a": 1}'

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_overwrites_existing_content_whole(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old-and-longer-content")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_crash_mid_publish_leaves_target_intact(self, tmp_path, monkeypatch):
        """A failure between temp-write and rename must neither truncate
        the previous file nor leave the temp file behind."""
        target = tmp_path / "out.json"
        target.write_text("previous complete content")

        def exploding_replace(self, other):
            raise OSError("simulated crash")

        monkeypatch.setattr(Path, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "half-written garbage")
        monkeypatch.undo()
        assert target.read_text() == "previous complete content"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_crash_during_temp_write_leaves_no_litter(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"

        def exploding_write(self, text):
            self.touch()  # the partial file exists...
            raise OSError("disk full")

        monkeypatch.setattr(Path, "write_text", exploding_write)
        with pytest.raises(OSError):
            atomic_write_text(target, "doomed")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_temp_name_embeds_writer_pid(self, tmp_path, monkeypatch):
        """Concurrent processes publishing the same path must own
        distinct temp files; the pid in the name guarantees it."""
        seen = []
        original = Path.write_text

        def spying_write(self, text):
            seen.append(self.name)
            return original(self, text)

        monkeypatch.setattr(Path, "write_text", spying_write)
        atomic_write_text(tmp_path / "out.json", "x")
        assert seen == [f"out.json.{os.getpid()}.tmp"]
