"""Tests for the baseline searchers and exact solvers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    best_single_library,
    brute_force,
    chain_dp,
    greedy_per_layer,
    is_chain,
    pbqp_solve,
    random_search,
    single_library_results,
)
from repro.engine.pricing import CostEngine
from repro.errors import ConfigError

from tests.helpers import synthetic_chain_lut, trap_lut


class TestRandomSearch:
    def test_deterministic_per_seed(self):
        lut = synthetic_chain_lut(6, 4, seed=1)
        a = random_search(lut, episodes=100, seed=5)
        b = random_search(lut, episodes=100, seed=5)
        assert a.best_ms == b.best_ms and a.curve_ms == b.curve_ms

    def test_more_episodes_never_worse(self):
        lut = synthetic_chain_lut(6, 4, seed=1)
        short = random_search(lut, episodes=50, seed=5)
        long = random_search(lut, episodes=500, seed=5)
        assert long.best_ms <= short.best_ms

    def test_best_matches_assignments(self):
        lut = synthetic_chain_lut(6, 4, seed=1)
        result = random_search(lut, episodes=100, seed=5)
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )

    def test_bad_episodes(self):
        with pytest.raises(ConfigError):
            random_search(synthetic_chain_lut(3, 2), episodes=0)

    def test_curve_recorded(self):
        lut = synthetic_chain_lut(4, 3, seed=2)
        result = random_search(lut, episodes=25, seed=0)
        assert len(result.curve_ms) == 25


class TestBruteForce:
    def test_optimal_on_trap(self):
        result = brute_force(trap_lut())
        assert result.best_ms == pytest.approx(10.0)

    def test_episodes_is_space_size(self):
        lut = synthetic_chain_lut(3, 4, seed=3)
        assert brute_force(lut).episodes == 4**3

    def test_refuses_huge_spaces(self):
        lut = synthetic_chain_lut(30, 8, seed=3)
        with pytest.raises(ConfigError):
            brute_force(lut)

    def test_never_beaten_by_random(self):
        lut = synthetic_chain_lut(5, 3, seed=4)
        exact = brute_force(lut)
        rs = random_search(lut, episodes=500, seed=1)
        assert exact.best_ms <= rs.best_ms + 1e-12


class TestChainDP:
    def test_matches_brute_force(self):
        for seed in range(5):
            lut = synthetic_chain_lut(6, 4, seed=seed)
            assert chain_dp(lut).best_ms == pytest.approx(
                brute_force(lut).best_ms, rel=1e-12
            )

    def test_is_chain_on_synthetic(self):
        assert is_chain(synthetic_chain_lut(5, 3))

    def test_not_chain_on_branchy(self, squeezenet_lut_gpgpu):
        assert not is_chain(squeezenet_lut_gpgpu)

    def test_rejects_non_chain(self, squeezenet_lut_gpgpu):
        with pytest.raises(ConfigError):
            chain_dp(squeezenet_lut_gpgpu)

    def test_chain_on_real_lenet(self, lenet_lut_gpgpu):
        assert is_chain(lenet_lut_gpgpu)
        result = chain_dp(lenet_lut_gpgpu)
        assert lenet_lut_gpgpu.schedule_time(result.best_assignments) == (
            pytest.approx(result.best_ms)
        )


class TestPBQP:
    def test_exact_on_chains(self):
        for seed in range(5):
            lut = synthetic_chain_lut(8, 4, seed=10 + seed)
            assert pbqp_solve(lut).best_ms == pytest.approx(
                chain_dp(lut).best_ms, rel=1e-12
            )

    def test_solves_trap(self):
        assert pbqp_solve(trap_lut()).best_ms == pytest.approx(10.0)

    def test_near_optimal_on_branchy_graph(self, squeezenet_lut_gpgpu):
        lut = squeezenet_lut_gpgpu
        pb = pbqp_solve(lut)
        rs = random_search(lut, episodes=2000, seed=0)
        assert pb.best_ms < rs.best_ms
        # And the assignment must be internally consistent.
        assert lut.schedule_time(pb.best_assignments) == pytest.approx(pb.best_ms)

    def test_branchy_assignment_complete(self, squeezenet_lut_gpgpu):
        pb = pbqp_solve(squeezenet_lut_gpgpu)
        assert set(pb.best_assignments) == set(squeezenet_lut_gpgpu.layers)


class TestExactPricingAgreement:
    """The exact solvers must report *exactly* the CostEngine price of
    the assignment they return — any drift means a solver priced its
    result through a different (buggy) code path."""

    def test_brute_force_exactly_equals_engine_price(self):
        for seed in range(5):
            lut = synthetic_chain_lut(5, 4, seed=seed)
            engine = CostEngine.from_lut(lut)
            result = brute_force(lut)
            choices = engine.choices_of(result.best_assignments)
            assert result.best_ms == engine.price(choices)  # bitwise

    def test_chain_dp_exactly_equals_engine_price(self):
        for seed in range(5):
            lut = synthetic_chain_lut(7, 4, seed=seed)
            engine = CostEngine.from_lut(lut)
            result = chain_dp(lut)
            choices = engine.choices_of(result.best_assignments)
            assert result.best_ms == engine.price(choices)  # bitwise

    def test_exact_solvers_on_real_lut(self, lenet_lut_gpgpu):
        engine = CostEngine.from_lut(lenet_lut_gpgpu)
        result = chain_dp(lenet_lut_gpgpu)
        choices = engine.choices_of(result.best_assignments)
        assert result.best_ms == engine.price(choices)  # bitwise

    def test_brute_force_equals_dp_on_trap(self):
        lut = trap_lut()
        engine = CostEngine.from_lut(lut)
        bf = brute_force(lut)
        dp = chain_dp(lut)
        assert bf.best_ms == dp.best_ms  # both priced by the engine
        assert bf.best_ms == engine.price(
            engine.choices_of(bf.best_assignments)
        )


class TestGreedy:
    def test_picks_per_layer_fastest(self):
        lut = synthetic_chain_lut(5, 4, seed=6)
        result = greedy_per_layer(lut)
        for layer in lut.layers:
            uid = result.best_assignments[layer]
            assert uid == lut.best_uid(layer)

    def test_falls_into_fig1_trap(self):
        """Greedy picks the fastest middle layer and pays the penalties."""
        result = greedy_per_layer(trap_lut())
        assert result.best_assignments["l1"] == "prim1"
        assert result.best_ms == pytest.approx(12.0)
        assert result.best_ms > brute_force(trap_lut()).best_ms

    def test_total_includes_penalties(self):
        lut = synthetic_chain_lut(5, 4, seed=6)
        result = greedy_per_layer(lut)
        raw = sum(
            lut.layer_time(l, result.best_assignments[l]) for l in lut.layers
        )
        assert result.best_ms >= raw


class TestSingleLibrary:
    def test_results_sorted_fastest_first(self, lenet_lut_cpu):
        results = single_library_results(lenet_lut_cpu)
        totals = [r.total_ms for r in results]
        assert totals == sorted(totals)

    def test_every_library_covered(self, lenet_lut_cpu):
        libs = {r.library for r in single_library_results(lenet_lut_cpu)}
        assert libs == {m.library for m in lenet_lut_cpu.meta.values()}

    def test_bsl_is_fastest(self, lenet_lut_cpu):
        results = single_library_results(lenet_lut_cpu)
        assert best_single_library(lenet_lut_cpu).total_ms == results[0].total_ms

    def test_vanilla_schedule_uses_only_vanilla(self, lenet_lut_cpu):
        from repro.baselines.best_single_library import single_library_schedule

        result = single_library_schedule(lenet_lut_cpu, "vanilla")
        metas = {lenet_lut_cpu.meta[u].library for u in result.assignments.values()}
        assert metas == {"vanilla"}

    def test_partial_library_falls_back_to_vanilla(self, lenet_lut_gpgpu):
        from repro.baselines.best_single_library import single_library_schedule

        result = single_library_schedule(lenet_lut_gpgpu, "cudnn")
        libs = {
            lenet_lut_gpgpu.meta[u].library for u in result.assignments.values()
        }
        assert libs == {"cudnn", "vanilla"}
        # FC layers must be the Vanilla fallback.
        assert lenet_lut_gpgpu.meta[result.assignments["ip1"]].library == "vanilla"

    def test_exclude_vanilla(self, lenet_lut_cpu):
        bsl = best_single_library(lenet_lut_cpu, exclude_vanilla=True)
        assert bsl.library != "vanilla"

    def test_vanilla_is_never_bsl(self, lenet_lut_cpu):
        """Any accelerated library beats pure Vanilla."""
        assert best_single_library(lenet_lut_cpu).library != "vanilla"
