"""The worker fleet: leases, heartbeats, quotas, rate limits, drains.

Two layers of coverage.  Deterministic lease mechanics run against an
*unstarted* ``CampaignService`` (workers=0, no event loop): submit,
lease, expire and finish are all plain synchronous calls, so expiry
and retry-budget edges are driven with explicit ``now`` values instead
of sleeps.  Protocol/admission behaviour (409s, 429 + Retry-After,
observability bypass, shutdown drain) runs over real HTTP against a
live service, including a full ``FleetWorker`` round trip asserting
remote execution is bitwise-identical to local.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.core.config import ServiceConfig
from repro.errors import (
    ConfigError,
    LeaseError,
    LeaseExpiredError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.runtime.campaign import CampaignJob, execute_job
from repro.runtime.client import ServiceClient
from repro.runtime.metrics import parse_samples
from repro.runtime.service import (
    CampaignService,
    TokenBucket,
    WorkerInfo,
)
from repro.runtime.store import (
    LEASE_ACTIVE,
    LEASE_COMPLETED,
    LEASE_EXPIRED,
    LEASE_FAILED,
    LEASE_RELEASED,
    ResultStore,
    job_key,
)
from repro.runtime.worker import (
    FleetWorker,
    WorkerConfig,
    encode_outcome,
    idle_backoff,
)

EPISODES = 150

FAR_FUTURE = 1e12  # a `now` safely past any real lease deadline


def _toy_job(**overrides) -> CampaignJob:
    fields = dict(
        network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
    )
    fields.update(overrides)
    return CampaignJob(**fields)


def _fleet_service(**overrides) -> CampaignService:
    """An unstarted workers=0 service (pure-sync queue mechanics)."""
    overrides.setdefault("workers", 0)
    overrides.setdefault("port", 0)
    return CampaignService(ServiceConfig(**overrides))


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        now = bucket.updated
        assert bucket.take(now) == 0.0
        assert bucket.take(now) == 0.0
        wait = bucket.take(now)
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        now = bucket.updated
        assert bucket.take(now) == 0.0
        assert bucket.take(now) > 0.0
        # Half a second at 2 tokens/s refills the single token.
        assert bucket.take(now + 0.5) == 0.0

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3)
        now = bucket.updated
        for _ in range(3):
            assert bucket.take(now + 60.0) == 0.0
        assert bucket.take(now + 60.0) > 0.0

    def test_wait_hint_shrinks_as_tokens_accrue(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        now = bucket.updated
        bucket.take(now)
        first = bucket.take(now)
        later = bucket.take(now + 0.25)
        assert 0 < later < first


class TestWorkerRegistration:
    def test_ids_are_unique_even_with_shared_names(self):
        service = _fleet_service()
        a = service.register_worker("host")
        b = service.register_worker("host")
        assert a.id != b.id
        assert a.name == b.name == "host"
        assert set(service.workers_info) == {a.id, b.id}

    def test_invalid_name_rejected(self):
        service = _fleet_service()
        for bad in ("", "x" * 65, "has space", "semi;colon", "a\nb"):
            with pytest.raises(ConfigError):
                service.register_worker(bad)

    def test_anonymous_worker_named_after_id(self):
        info = _fleet_service().register_worker()
        assert info.name == info.id

    def test_unknown_worker_cannot_lease(self):
        service = _fleet_service()
        with pytest.raises(LeaseError):
            service.lease_next("w99-ghost")


class TestLeaseLifecycle:
    def test_grant_moves_job_to_running_under_a_lease(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        granted = service.lease_next(info.id)
        assert granted is record
        assert record.state == "running"
        assert record.attempts == 1
        assert record.worker == info.id
        lease = service.store.get_lease(record.lease_id)
        assert lease.state == LEASE_ACTIVE
        assert lease.worker == info.id
        assert lease.attempt == 1

    def test_empty_queue_leases_none(self):
        service = _fleet_service()
        info = service.register_worker("host")
        assert service.lease_next(info.id) is None

    def test_cancelled_job_is_skipped(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        assert service.cancel(record.id)
        assert service.lease_next(info.id) is None

    def test_heartbeat_extends_deadline(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        service.lease_next(info.id)
        before = service.store.get_lease(record.lease_id).deadline_s
        time.sleep(0.01)
        after = service.heartbeat(record.lease_id)
        assert after["deadline_s"] > before

    def test_heartbeat_after_expiry_raises_conflict(self):
        """Satellite case: a beat past the deadline answers 409 —
        deterministically, without waiting for the reaper."""
        service = _fleet_service(lease_ttl_s=30.0)
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        service.lease_next(info.id)
        # Flip the lease by beating *late* (explicit now), not by
        # sleeping: heartbeat_lease itself detects the missed deadline.
        late = service.store.heartbeat_lease(
            record.lease_id, service.config.lease_ttl_s, now=FAR_FUTURE
        )
        assert late is None
        assert (
            service.store.get_lease(record.lease_id).state == LEASE_EXPIRED
        )
        with pytest.raises(LeaseExpiredError):
            service.heartbeat(record.lease_id)

    def test_heartbeat_unknown_lease_raises(self):
        with pytest.raises(LeaseExpiredError):
            _fleet_service().heartbeat("lease-404")


class TestResultSubmission:
    def _leased(self, **config):
        service = _fleet_service(**config)
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        service.lease_next(info.id)
        return service, info, record

    def test_result_lands_bitwise_equal_to_local(self):
        service, _, record = self._leased()
        local = execute_job(record.job)
        # The worker's wire body: encode, then the HTTP JSON hop.
        body = json.loads(json.dumps(encode_outcome(local)))
        status, payload = service.finish_remote(record.lease_id, body)
        assert status == 200 and payload["accepted"]
        assert record.state == "done"
        assert record.result.payload.best_ms == local.payload.best_ms
        stored = service.store.get(record.job)
        assert stored is not None
        lease = service.store.get_lease(payload["job"]["lease_id"])
        assert lease.state == LEASE_COMPLETED

    def test_duplicate_submission_is_idempotent(self):
        """Satellite case: a second POST of the same result answers
        200 with ``accepted: false`` instead of erroring."""
        service, _, record = self._leased()
        body = json.loads(json.dumps(encode_outcome(execute_job(record.job))))
        lease_id = record.lease_id
        first = service.finish_remote(lease_id, body)
        second = service.finish_remote(lease_id, body)
        assert first[0] == second[0] == 200
        assert first[1]["accepted"] is True
        assert second[1]["accepted"] is False
        assert second[1]["duplicate"] is True
        assert second[1]["job_state"] == "done"

    def test_result_on_expired_lease_conflicts(self):
        service, _, record = self._leased()
        lease_id = record.lease_id
        expired = service.store.expire_due_leases(now=FAR_FUTURE)
        assert [lease.lease_id for lease in expired] == [lease_id]
        for lease in expired:
            service._requeue_expired(lease)
        with pytest.raises(LeaseExpiredError):
            service.finish_remote(lease_id, {"error": "too late"})

    def test_result_on_unknown_lease_conflicts(self):
        with pytest.raises(LeaseError):
            _fleet_service().finish_remote("lease-404", {"error": "x"})

    def test_worker_reported_error_is_terminal(self):
        """A job that *raised* on the worker fails without retry —
        searches are deterministic, it would raise anywhere."""
        service, info, record = self._leased()
        status, payload = service.finish_remote(
            record.lease_id, {"error": "ValueError: bad LUT"}
        )
        assert status == 200 and payload["accepted"]
        assert record.state == "failed"
        assert "bad LUT" in record.error
        assert info.failed == 1
        # The queue stays empty: no requeue happened.
        assert service.lease_next(info.id) is None

    def test_malformed_submission_is_a_client_error(self):
        service, _, record = self._leased()
        with pytest.raises(ConfigError):
            service.finish_remote(record.lease_id, {"payload_kind": "nope"})
        with pytest.raises(ConfigError):
            service.finish_remote(record.lease_id, "not an object")


class TestExpiryAndRetryBudget:
    def _expire_current_lease(self, service):
        expired = service.store.expire_due_leases(now=FAR_FUTURE)
        assert len(expired) == 1
        service._requeue_expired(expired[0])
        return expired[0]

    def test_expired_lease_requeues_at_same_priority(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job(), priority=7)
        service.lease_next(info.id)
        self._expire_current_lease(service)
        assert record.state == "queued"
        assert record.worker is None and record.lease_id is None
        assert info.expired == 1
        regrant = service.lease_next(info.id)
        assert regrant is record
        assert record.attempts == 2
        assert service.store.get_lease(record.lease_id).attempt == 2
        assert record.priority == 7

    def test_retry_budget_exhaustion_fails_terminally(self):
        """Satellite case: past ``max_lease_retries`` lease grants the
        job goes terminal ``failed`` instead of crash-looping."""
        service = _fleet_service(max_lease_retries=2)
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        for attempt in (1, 2):
            assert service.lease_next(info.id) is record
            assert record.attempts == attempt
            self._expire_current_lease(service)
        assert record.state == "failed"
        assert "retry budget exhausted" in record.error
        assert "2 attempt(s)" in record.error
        assert record.done_event.is_set()
        assert service.lease_next(info.id) is None
        metrics = parse_samples(service.metrics.render())
        assert sum(metrics["repro_jobs_requeued_total"].values()) == 1.0
        assert sum(metrics["repro_leases_expired_total"].values()) == 2.0

    def test_expiry_after_completion_is_a_noop(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        service.lease_next(info.id)
        body = json.loads(json.dumps(encode_outcome(execute_job(record.job))))
        service.finish_remote(record.lease_id, body)
        # A stale reaper pass over the (already completed) lease must
        # not touch the done record.
        stale = service.store.get_lease(record.lease_id)
        service._requeue_expired(stale)
        assert record.state == "done"

    def test_expiry_during_shutdown_cancels(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        service.lease_next(info.id)
        service._closing = True
        self._expire_current_lease(service)
        assert record.state == "cancelled"
        assert "shutdown" in record.error


class TestStoreLeasePersistence:
    def test_finish_guard_is_active_only(self):
        """Of a result submission and the reaper's expiry, exactly one
        wins — the terminal state never flips."""
        store = ResultStore(":memory:")
        store.create_lease("l1", "job-1", "key", "w1", ttl_s=30.0)
        assert store.finish_lease("l1", LEASE_COMPLETED) is not None
        assert store.finish_lease("l1", LEASE_EXPIRED) is None
        assert store.get_lease("l1").state == LEASE_COMPLETED

    def test_release_active_leases_is_start_stop_hygiene(self):
        store = ResultStore(":memory:")
        store.create_lease("l1", "job-1", "key", "w1", ttl_s=30.0)
        store.create_lease("l2", "job-2", "key2", "w2", ttl_s=30.0)
        store.finish_lease("l1", LEASE_COMPLETED)
        assert store.release_active_leases() == 1
        assert store.active_leases() == []
        assert store.get_lease("l1").state == LEASE_COMPLETED

    def test_expire_due_only_flips_overdue(self):
        store = ResultStore(":memory:")
        store.create_lease("l1", "job-1", "key", "w1", ttl_s=30.0, now=0.0)
        store.create_lease("l2", "job-2", "key2", "w1", ttl_s=90.0, now=0.0)
        expired = store.expire_due_leases(now=60.0)
        assert [lease.lease_id for lease in expired] == ["l1"]
        assert store.get_lease("l2").state == LEASE_ACTIVE


class LiveFleet:
    """A live service on a background loop thread (fleet configs)."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 0)
        self.config = ServiceConfig(**overrides)
        self.service = CampaignService(self.config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "LiveFleet":
        self._thread.start()
        assert self._started.wait(10), "service failed to start"
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.service.port}", timeout=60
        )
        return self

    def wait_closed(self, timeout: float = 60.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.wait_closed(), self.loop
        ).result(timeout)

    def raw(self, method: str, path: str, body=None, headers=None):
        """One request returning the raw response (status + headers)."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=30
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            sent = {"Content-Type": "application/json"} if payload else {}
            sent.update(headers or {})
            conn.request(method, path, body=payload, headers=sent)
            response = conn.getresponse()
            raw = response.read()
            return (
                response.status,
                dict(response.getheaders()),
                json.loads(raw) if raw else {},
            )
        finally:
            conn.close()

    def __exit__(self, *exc) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self.loop
            ).result(60)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(10)


def _toy_body(**overrides):
    body = {"network": "fig1_toy", "mode": "gpgpu", "episodes": EPISODES}
    body.update(overrides)
    return body


class TestQuotaOverHttp:
    def test_quota_answers_429_with_retry_after(self):
        """Satellite case: per-tenant admission quota -> 429 whose
        Retry-After header is a positive integer."""
        with LiveFleet(quota_jobs=1) as live:
            live.client.submit(_toy_body())
            status, headers, body = live.raw(
                "POST", "/jobs", _toy_body(episodes=EPISODES + 1)
            )
            assert status == 429
            assert "quota" in body["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_quota_is_per_tenant(self):
        with LiveFleet(quota_jobs=1) as live:
            live.client.submit(_toy_body())
            with pytest.raises(QueueFullError):
                live.client.submit(_toy_body(episodes=EPISODES + 1))
            # Another tenant's quota is untouched.
            other = live.client.submit(
                _toy_body(episodes=EPISODES + 1), tenant="team-b"
            )
            assert other[0]["state"] == "queued"

    def test_invalid_tenant_rejected(self):
        with LiveFleet() as live:
            status, _, body = live.raw(
                "POST", "/jobs", _toy_body(),
                headers={"X-Tenant": "bad tenant!"},
            )
            assert status == 400
            assert "tenant" in body["error"]

    def test_rate_limit_answers_429_after_burst(self):
        with LiveFleet(rate_limit_per_s=0.25, rate_burst=1) as live:
            live.client.submit(_toy_body())
            status, headers, body = live.raw(
                "POST", "/jobs", _toy_body(episodes=EPISODES + 1)
            )
            assert status == 429
            assert "exceeded" in body["error"]
            # One token at 0.25/s is up to 4 s away.
            assert 1 <= int(headers["Retry-After"]) <= 4
            # Rejected submissions are visible in metrics.
            samples = parse_samples(live.client.metrics())
            rejected = samples["repro_jobs_rejected_total"]
            assert rejected[(("reason", "rate_limit"),)] >= 1.0

    def test_quota_exceeded_is_a_queue_full_subclass(self):
        # Clients catching QueueFullError keep working unchanged.
        assert issubclass(QuotaExceededError, QueueFullError)
        error = QuotaExceededError("over", retry_after_s=2.5)
        assert error.retry_after_s == 2.5


class TestObservabilityBypass:
    def test_healthz_and_metrics_answer_when_queue_is_full(self):
        """Satellite case: a saturated service must stay scrapable."""
        with LiveFleet(queue_limit=1) as live:
            live.client.submit(_toy_body())
            status, _, _ = live.raw(
                "POST", "/jobs", _toy_body(episodes=EPISODES + 1)
            )
            assert status == 429
            health = live.client.health()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 1
            samples = parse_samples(live.client.metrics())
            assert samples["repro_queue_depth"][()] == 1.0
            assert samples["repro_queue_limit"][()] == 1.0

    def test_metrics_content_type_is_prometheus(self):
        with LiveFleet() as live:
            conn = http.client.HTTPConnection(
                "127.0.0.1", live.service.port, timeout=30
            )
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert response.getheader("Content-Type") == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
            finally:
                conn.close()

    def test_scrape_carries_service_info_and_worker_gauges(self):
        with LiveFleet() as live:
            live.client.register_worker("scraped")
            samples = parse_samples(live.client.metrics())
            info = samples["repro_service_info"]
            assert list(info.values()) == [1.0]
            assert samples["repro_workers_registered"][()] == 1.0


class TestFleetWorkerOverHttp:
    def test_fleet_execution_is_bitwise_equal_to_local(self):
        """The whole protocol end to end, in process: register ->
        lease -> heartbeat thread -> result, against a live server."""
        with LiveFleet() as live:
            record = live.client.submit(_toy_body())[0]
            worker = FleetWorker(
                WorkerConfig(server=f"http://127.0.0.1:{live.service.port}")
            )
            worker.register()
            assert worker.run_one() is True
            assert worker.run_one() is False  # queue drained
            final = live.client.wait(record["id"], timeout=60)
        assert final["state"] == "done"
        assert final["attempts"] == 1
        assert worker.stats.completed == 1
        local = execute_job(_toy_job())
        assert final["best_ms"] == local.payload.best_ms  # bitwise

    def test_lease_age_gauge_tracks_active_leases(self):
        with LiveFleet() as live:
            grant = live.client.register_worker("ager")
            live.client.submit(_toy_body())
            lease = live.client.lease(grant["worker"]["id"])["lease"]
            samples = parse_samples(live.client.metrics())
            ages = samples["repro_lease_age_seconds"]
            (key,) = ages
            assert ("lease", lease["lease_id"]) in key
            assert ages[key] >= 0.0

    def test_worker_listing_shows_lease_ownership(self):
        with LiveFleet() as live:
            grant = live.client.register_worker("lister")
            worker_id = grant["worker"]["id"]
            record = live.client.submit(_toy_body())[0]
            live.client.lease(worker_id)
            listing = live.client.workers()
            names = {info["name"] for info in listing["workers"]}
            assert "lister" in names
            (lease,) = listing["leases"]
            assert lease["worker"] == worker_id
            assert lease["job_id"] == record["id"]


class TestShutdownDrain:
    def test_drain_waits_for_an_outstanding_lease(self):
        """Satellite case: shutdown keeps serving lease traffic until
        outstanding fleet results land (within drain_timeout_s)."""
        with LiveFleet(drain_timeout_s=30.0) as live:
            grant = live.client.register_worker("drainer")
            record = live.client.submit(_toy_body())[0]
            granted = live.client.lease(grant["worker"]["id"])
            lease_id = granted["lease"]["lease_id"]
            outcome = encode_outcome(execute_job(_toy_job()))
            live.client.shutdown()
            # The server is draining but still answers the result POST
            # on a brand-new connection.
            accepted = live.client.submit_result(lease_id, outcome)
            assert accepted["accepted"] is True
            live.wait_closed()
            # The store is closed with the service; the in-memory
            # record carries the drained result (accepted above means
            # the persistence path ran before close).
            final = live.service.records[record["id"]]
            assert final.state == "done"
            assert final.result is not None

    def test_drain_timeout_releases_the_lease_and_cancels(self):
        with LiveFleet(drain_timeout_s=0.2) as live:
            grant = live.client.register_worker("too-slow")
            record = live.client.submit(_toy_body())[0]
            live.client.lease(grant["worker"]["id"])
            live.client.shutdown()
            live.wait_closed()
            final = live.service.records[record["id"]]
            assert final.state == "cancelled"
            assert final.error == "lease released at shutdown"

    def test_draining_service_stops_granting_leases(self):
        service = _fleet_service()
        info = service.register_worker("latecomer")
        service.submit(_toy_job())
        service._closing = True
        assert service.lease_next(info.id) is None
        with pytest.raises(ServiceError):
            service.submit(_toy_job(episodes=EPISODES + 1))


class TestWorkerConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkerConfig(server="")
        with pytest.raises(ConfigError):
            WorkerConfig(server="http://x", poll_s=0)
        with pytest.raises(ConfigError):
            WorkerConfig(server="http://x", max_jobs=-1)

    def test_encode_outcome_round_trips_floats_bitwise(self):
        result = execute_job(_toy_job())
        outcome = encode_outcome(result)
        # The wire hop a real submission makes.
        hopped = json.loads(json.dumps(outcome))
        assert hopped["payload"]["best_ms"] == result.payload.best_ms
        assert hopped["payload_kind"] == "search_result"
        assert hopped["wall_clock_s"] == result.wall_clock_s


class TestLeaseHttpConflicts:
    def test_http_heartbeat_404_lease_is_409(self):
        with LiveFleet() as live:
            status, _, body = live.raw(
                "POST", "/leases/lease-404/heartbeat"
            )
            assert status == 409
            assert "lease-404" in body["error"]

    def test_http_lease_requires_registration(self):
        with LiveFleet() as live:
            status, _, body = live.raw(
                "POST", "/leases", {"worker": "w9-ghost"}
            )
            assert status == 409
            assert "POST /workers" in body["error"]

    def test_http_lease_empty_queue_is_204(self):
        with LiveFleet() as live:
            grant = live.client.register_worker("poller")
            assert live.client.lease(grant["worker"]["id"]) is None


class TestBatchLease:
    """Batched leasing: one lease id covering N jobs (sync mechanics)."""

    def _batched(self, n=3, **overrides):
        service = _fleet_service(**overrides)
        info = service.register_worker("host")
        records = [
            service.submit(_toy_job(episodes=EPISODES + i)) for i in range(n)
        ]
        granted = service.lease_batch(info.id, n)
        return service, info, records, granted

    def _outcome(self, record):
        entry = json.loads(json.dumps(encode_outcome(execute_job(record.job))))
        entry["job_id"] = record.id
        return entry

    def test_batch_grant_shares_one_lease(self):
        service, _, records, granted = self._batched()
        assert granted == records
        assert len({r.lease_id for r in records}) == 1
        lease = service.store.get_lease(records[0].lease_id)
        assert lease.job_ids == [r.id for r in records]
        assert lease.job_keys == [job_key(r.job) for r in records]
        for record in records:
            assert record.state == "running"
            assert record.attempts == 1

    def test_lease_to_dict_stays_single_job_compatible(self):
        service, _, records, _ = self._batched()
        view = service.store.get_lease(records[0].lease_id).to_dict()
        # Single-lease consumers keep reading a plain job_id (the
        # first job of the batch); batch consumers get the full list.
        assert view["job_id"] == records[0].id
        assert view["job_ids"] == [r.id for r in records]
        assert view["jobs"] == len(records)

    def test_batch_clamps_to_queue_depth(self):
        service, info, records, granted = self._batched(n=2)
        assert len(granted) == 2
        assert service.lease_batch(info.id, 5) == []

    def test_single_job_batch_is_wire_identical_to_legacy(self):
        service = _fleet_service()
        info = service.register_worker("host")
        record = service.submit(_toy_job())
        (granted,) = service.lease_batch(info.id, 1)
        assert granted is record
        lease = service.store.get_lease(record.lease_id)
        assert lease.job_id == record.id  # plain id, no space joining
        assert lease.to_dict()["job_ids"] == [record.id]

    def test_batch_expiry_requeues_every_job_exactly_once(self):
        """ISSUE edge: a crashed worker holding a multi-job batch —
        every job requeued exactly once, then completes bitwise."""
        service, info, records, _ = self._batched()
        expired = service.store.expire_due_leases(now=FAR_FUTURE)
        assert len(expired) == 1  # one lease covered the whole batch
        service._requeue_expired(expired[0])
        for record in records:
            assert record.state == "queued"
            assert record.worker is None and record.lease_id is None
            assert record.attempts == 1
        metrics = parse_samples(service.metrics.render())
        assert sum(metrics["repro_jobs_requeued_total"].values()) == 3.0
        assert sum(metrics["repro_leases_expired_total"].values()) == 1.0
        regrant = service.lease_batch(info.id, len(records))
        assert regrant == records
        assert all(r.attempts == 2 for r in records)
        locals_ = {r.id: execute_job(r.job) for r in records}
        status, payload = service.finish_remote_batch(
            records[0].lease_id,
            {"results": [self._outcome(r) for r in records]},
        )
        assert status == 200 and payload["accepted"]
        assert payload["requeued"] == []
        assert [s["status"] for s in payload["results"]] == ["done"] * 3
        for record in records:
            assert record.state == "done"
            assert (
                record.result.payload.best_ms
                == locals_[record.id].payload.best_ms
            )  # bitwise, attempt 2 or not
            assert service.store.get(record.job) is not None
        lease = service.store.get_lease(records[0].lease_id)
        assert lease.state == LEASE_COMPLETED

    def test_mixed_failures_do_not_poison_siblings(self):
        """ISSUE edge: one result batch carrying a success, a
        worker-reported failure and a malformed entry."""
        service, info, records, _ = self._batched()
        good, failed, malformed = records
        local = execute_job(good.job)
        entries = [
            self._outcome(good),
            {"job_id": failed.id, "error": "ValueError: bad LUT"},
            {"job_id": malformed.id, "payload_kind": "nope"},
        ]
        status, payload = service.finish_remote_batch(
            good.lease_id, {"results": entries}
        )
        assert status == 200 and payload["accepted"]
        by_id = {s["job_id"]: s["status"] for s in payload["results"]}
        assert by_id == {
            good.id: "done",
            failed.id: "failed",
            malformed.id: "rejected",
        }
        assert good.state == "done"
        assert good.result.payload.best_ms == local.payload.best_ms
        assert failed.state == "failed" and "bad LUT" in failed.error
        # The malformed entry's job is requeued, not failed.
        assert payload["requeued"] == [malformed.id]
        assert malformed.state == "queued" and malformed.error is None
        assert info.completed == 1 and info.failed == 1
        lease = service.store.get_lease(good.lease_id)
        assert lease.state == LEASE_RELEASED

    def test_partial_delivery_requeues_missing_jobs(self):
        service, info, records, _ = self._batched()
        delivered, *missing = records
        status, payload = service.finish_remote_batch(
            delivered.lease_id, {"results": [self._outcome(delivered)]}
        )
        assert status == 200
        assert payload["requeued"] == [r.id for r in missing]
        assert delivered.state == "done"
        for record in missing:
            assert record.state == "queued"
        # The survivors are leasable again, exactly once more.
        regrant = service.lease_batch(info.id, 5)
        assert regrant == missing
        assert all(r.attempts == 2 for r in missing)

    def test_all_failed_batch_marks_lease_failed(self):
        service, _, records, _ = self._batched(n=2)
        entries = [{"job_id": r.id, "error": "RuntimeError: x"} for r in records]
        _, payload = service.finish_remote_batch(
            records[0].lease_id, {"results": entries}
        )
        assert all(r.state == "failed" for r in records)
        assert payload["lease"]["state"] == LEASE_FAILED

    def test_unknown_and_duplicate_entries_are_reported(self):
        service, _, records, _ = self._batched(n=2)
        entries = [
            {"job_id": "job-999", "error": "x"},
            self._outcome(records[0]),
            {"job_id": records[0].id, "error": "again"},
            self._outcome(records[1]),
        ]
        _, payload = service.finish_remote_batch(
            records[0].lease_id, {"results": entries}
        )
        statuses = {
            (s["job_id"], s["status"]) for s in payload["results"]
        }
        assert ("job-999", "unknown_job") in statuses
        assert (records[0].id, "duplicate_entry") in statuses
        assert (records[0].id, "done") in statuses
        assert (records[1].id, "done") in statuses
        assert records[0].state == records[1].state == "done"

    def test_entry_without_job_id_rejects_whole_request(self):
        service, _, records, _ = self._batched(n=2)
        with pytest.raises(ConfigError):
            service.finish_remote_batch(
                records[0].lease_id, {"results": [{"error": "anonymous"}]}
            )
        with pytest.raises(ConfigError):
            service.finish_remote_batch(records[0].lease_id, {"results": "no"})

    def test_single_result_endpoint_refuses_multi_job_lease(self):
        service, _, records, _ = self._batched()
        with pytest.raises(ConfigError, match="covers 3 jobs"):
            service.finish_remote(records[0].lease_id, {"error": "x"})

    def test_duplicate_batch_delivery_is_idempotent(self):
        service, _, records, _ = self._batched(n=2)
        body = {"results": [self._outcome(r) for r in records]}
        first = service.finish_remote_batch(records[0].lease_id, body)
        second = service.finish_remote_batch(records[0].lease_id, body)
        assert first[1]["accepted"] is True
        assert second[1]["accepted"] is False
        assert second[1]["duplicate"] is True

    def test_batch_after_expiry_conflicts(self):
        service, _, records, _ = self._batched(n=2)
        lease_id = records[0].lease_id
        for lease in service.store.expire_due_leases(now=FAR_FUTURE):
            service._requeue_expired(lease)
        with pytest.raises(LeaseExpiredError):
            service.finish_remote_batch(
                lease_id, {"results": [self._outcome(records[0])]}
            )

    def test_lease_batch_size_histogram_observes_grants(self):
        service, _, _, _ = self._batched()
        metrics = parse_samples(service.metrics.render())
        assert metrics["repro_lease_batch_jobs_sum"][()] == 3.0
        assert metrics["repro_lease_batch_jobs_count"][()] == 1.0


class TestIdleBackoff:
    """Jittered exponential backoff for idle lease polls."""

    def test_zero_before_any_empty_poll(self):
        assert idle_backoff(0.5, 0) == 0.0
        assert idle_backoff(0.5, -3) == 0.0

    def test_doubles_then_caps_at_poll_interval(self):
        rng = _FixedRng(1.0)  # jitter pinned to the upper bound
        waits = [idle_backoff(0.8, n, rng=rng) for n in (1, 2, 3, 4, 9)]
        assert waits == [0.1, 0.2, 0.4, 0.8, 0.8]

    def test_jitter_stays_within_half_to_full_base(self):
        for n in (1, 3, 7):
            base = min(0.5, (0.5 / 8.0) * 2.0 ** (n - 1))
            for _ in range(50):
                wait = idle_backoff(0.5, n)
                assert 0.5 * base <= wait <= base

    def test_huge_idle_counter_does_not_overflow(self):
        """Regression: 2**(n-1) raised OverflowError past ~1024 empty
        polls, crashing a drained fleet worker within minutes."""
        rng = _FixedRng(1.0)
        assert idle_backoff(0.5, 5000, rng=rng) == 0.5

    def test_injected_rng_is_deterministic(self):
        import random

        a = [idle_backoff(0.5, n, rng=random.Random(7)) for n in (1, 2, 3)]
        b = [idle_backoff(0.5, n, rng=random.Random(7)) for n in (1, 2, 3)]
        assert a == b


class _FixedRng:
    """A stand-in rng whose uniform() returns a pinned fraction."""

    def __init__(self, fraction: float) -> None:
        self.fraction = fraction

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.fraction


class TestWorkerBatchSizing:
    def test_lease_batch_validated(self):
        with pytest.raises(ConfigError):
            WorkerConfig(server="http://x", lease_batch=0)

    def test_batch_size_respects_remaining_max_jobs(self):
        worker = FleetWorker(
            WorkerConfig(server="http://x", lease_batch=8, max_jobs=5)
        )
        assert worker._batch_size() == 5
        worker.stats.completed = 3
        assert worker._batch_size() == 2
        worker.stats.failed = 2
        assert worker._batch_size() == 1  # never asks for zero

    def test_unbounded_worker_asks_for_the_full_batch(self):
        worker = FleetWorker(WorkerConfig(server="http://x", lease_batch=8))
        assert worker._batch_size() == 8


class TestBatchOverHttp:
    def test_worker_lease_batch_end_to_end_bitwise(self):
        """Two jobs under ONE lease, delivered in ONE result POST,
        both bitwise-equal to local execution."""
        with LiveFleet() as live:
            first = live.client.submit(_toy_body())[0]
            second = live.client.submit(_toy_body(episodes=EPISODES + 1))[0]
            worker = FleetWorker(
                WorkerConfig(
                    server=f"http://127.0.0.1:{live.service.port}",
                    lease_batch=4,
                )
            )
            worker.register()
            assert worker.run_one() is True
            assert worker.stats.completed == 2
            finals = [
                live.client.wait(record["id"], timeout=60)
                for record in (first, second)
            ]
        assert {f["state"] for f in finals} == {"done"}
        assert finals[0]["lease_id"] == finals[1]["lease_id"]
        for final in finals:
            local = execute_job(CampaignJob(**final["job"]))
            assert final["best_ms"] == local.payload.best_ms  # bitwise

    def test_http_grant_carries_jobs_array(self):
        with LiveFleet() as live:
            grant = live.client.register_worker("batcher")
            live.client.submit(_toy_body())
            live.client.submit(_toy_body(episodes=EPISODES + 1))
            status, _, body = live.raw(
                "POST",
                "/leases",
                {"worker": grant["worker"]["id"], "max_jobs": 8},
            )
            assert status == 200
            assert len(body["jobs"]) == 2
            assert body["job"] == body["jobs"][0]
            assert body["lease"]["job_ids"] == [
                job["id"] for job in body["jobs"]
            ]

    def test_http_invalid_max_jobs_rejected(self):
        with LiveFleet() as live:
            grant = live.client.register_worker("fussy")
            worker_id = grant["worker"]["id"]
            for bad in (0, -1, "many", True, 1.5):
                status, _, body = live.raw(
                    "POST", "/leases", {"worker": worker_id, "max_jobs": bad}
                )
                assert status == 400, bad
                assert "max_jobs" in body["error"]

    def test_http_batch_limit_clamps_grant(self):
        with LiveFleet(lease_batch_limit=2) as live:
            grant = live.client.register_worker("clamped")
            for offset in range(3):
                live.client.submit(_toy_body(episodes=EPISODES + offset))
            granted = live.client.lease(grant["worker"]["id"], max_jobs=64)
            assert len(granted["jobs"]) == 2

    def test_batch_results_body_over_one_mib_accepted(self):
        """Regression: the flat 1 MiB body cap rejected full result
        batches (400), silently discarding every executed result; the
        results route's allowance now scales with the batch limit."""
        with LiveFleet() as live:
            records = [
                live.client.submit(_toy_body(episodes=EPISODES + n))[0]
                for n in range(2)
            ]
            grant = live.client.register_worker("bulky")
            granted = live.client.lease(grant["worker"]["id"], max_jobs=2)
            outcomes = [
                {"job_id": record["id"], "error": "x" * 700_000}
                for record in records
            ]
            assert len(json.dumps({"results": outcomes})) > 1 << 20
            status, _, body = live.raw(
                "POST",
                f"/leases/{granted['lease']['lease_id']}/results",
                {"results": outcomes},
            )
            assert status == 200
            assert body["accepted"] is True
            for record in records:
                assert live.client.job(record["id"])["state"] == "failed"

    def test_oversized_body_still_rejected_off_the_results_route(self):
        """The flat 1 MiB cap still guards every other route; only the
        declared length is sent — the server 400s before the body, so
        actually sending one would race its connection close."""
        import socket

        with LiveFleet() as live:
            with socket.create_connection(
                ("127.0.0.1", live.service.port), timeout=30
            ) as sock:
                sock.sendall(
                    b"POST /jobs HTTP/1.1\r\n"
                    b"Content-Length: 1048577\r\n\r\n"
                )
                response = sock.recv(65536)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"exceeds" in response

    def test_body_limit_scales_only_for_batch_results(self):
        service = _fleet_service(lease_batch_limit=16)
        assert (
            service._body_limit("POST", "/leases/abc/results")
            == 16 * (1 << 20)
        )
        assert service._body_limit("POST", "/leases/abc/result") == 1 << 20
        assert service._body_limit("POST", "/jobs") == 1 << 20
