"""Tests for the epsilon-greedy schedules."""

from __future__ import annotations

import pytest

from repro.core.epsilon import EpsilonPhase, EpsilonSchedule
from repro.errors import SearchError


class TestPaperSchedule:
    """The schedule of §V-B / Fig. 4."""

    def test_total_matches(self):
        assert EpsilonSchedule.paper(1000).total_episodes == 1000

    def test_first_half_explores(self):
        sched = EpsilonSchedule.paper(1000)
        assert all(sched.epsilon_for(i) == 1.0 for i in range(500))

    def test_fig4_structure_50_per_step(self):
        """Fig. 4: after episode 500, eps drops by 0.1 every 50 episodes."""
        sched = EpsilonSchedule.paper(1000)
        for step in range(9):
            eps = 0.9 - step * 0.1
            start = 500 + step * 50
            for i in range(start, start + 50):
                assert sched.epsilon_for(i) == pytest.approx(eps)

    def test_tail_is_full_exploitation(self):
        sched = EpsilonSchedule.paper(1000)
        assert sched.epsilon_for(999) == 0.0
        assert sched.epsilon_for(950) == 0.0

    def test_non_multiple_totals_still_cover(self):
        for total in (20, 37, 101, 733):
            sched = EpsilonSchedule.paper(total)
            assert sched.total_episodes == total
            assert sched.epsilon_for(total - 1) == 0.0

    def test_epsilon_never_increases(self):
        trace = EpsilonSchedule.paper(400).trace()
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_too_few_episodes_rejected(self):
        with pytest.raises(SearchError):
            EpsilonSchedule.paper(10)


class TestOtherSchedules:
    def test_constant(self):
        sched = EpsilonSchedule.constant(0.3, 100)
        assert set(sched.trace()) == {0.3}

    def test_linear_decays(self):
        trace = EpsilonSchedule.linear(100).trace()
        assert trace[0] == 1.0
        assert trace[-1] == 0.0
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_linear_needs_10(self):
        with pytest.raises(SearchError):
            EpsilonSchedule.linear(5)


class TestValidation:
    def test_out_of_range_episode(self):
        sched = EpsilonSchedule.constant(0.5, 10)
        with pytest.raises(SearchError):
            sched.epsilon_for(10)
        with pytest.raises(SearchError):
            sched.epsilon_for(-1)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(SearchError):
            EpsilonPhase(1.5, 10)

    def test_negative_episodes_rejected(self):
        with pytest.raises(SearchError):
            EpsilonPhase(0.5, -1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(SearchError):
            EpsilonSchedule([])

    def test_zero_total_rejected(self):
        with pytest.raises(SearchError):
            EpsilonSchedule([EpsilonPhase(0.5, 0)])

    def test_repr(self):
        assert "1x" in repr(EpsilonSchedule.constant(1.0, 5))
