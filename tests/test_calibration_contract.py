"""The calibration contract.

Table II's *shape* rests on a small set of qualitative orderings in the
cost models.  This file pins each of them explicitly, so an accidental
recalibration that silently breaks a paper claim fails here first, with
a name that says which claim died.

Every test states the claim it protects.
"""

from __future__ import annotations

import pytest

from repro import Mode, jetson_tx2
from repro.backends import armcl, blas, cublas, cudnn, nnpack, vanilla
from repro.hw.processor import ProcessorKind
from repro.nn.builder import NetworkBuilder
from repro.nn.tensor import TensorShape
from repro.zoo import build_network


@pytest.fixture(scope="module")
def tx2():
    return jetson_tx2()


def one_layer(kind_builder, *args, **kwargs):
    """Build a one-layer graph around the given builder call."""
    input_shape = kwargs.pop("input_shape")
    b = NetworkBuilder("probe", input_shape)
    getattr(b, kind_builder)("probe_layer", *args, **kwargs)
    g = b.build(check_single_output=False)
    return g, g.layer("probe_layer")


class TestVanillaGap:
    """Claim: 'an optimized combination can achieve 45x speedup ... on
    CPU compared to a dependency-free baseline'."""

    def test_tuned_cpu_conv_is_tens_of_x_faster_than_vanilla(self, tx2):
        g, layer = one_layer(
            "conv", out_channels=256, kernel=3, padding=1,
            input_shape=TensorShape(256, 28, 28),
        )
        van = vanilla.VanillaDirectConv().estimate_ms(layer, g, tx2)
        acl = armcl.ArmclWinogradConv().estimate_ms(layer, g, tx2)
        assert 20 <= van / acl <= 120  # the 45x claim needs this window


class TestCudnnFCGap:
    """Claim: big QS-DNN wins over cuDNN on AlexNet/VGG because cuDNN
    has no FC primitive and Vanilla FC is slow."""

    def test_cublas_much_faster_than_vanilla_on_big_fc(self, tx2):
        g, layer = one_layer(
            "fc", out_channels=4096, input_shape=TensorShape(256, 6, 6)
        )
        van = vanilla.VanillaFullyConnected().estimate_ms(layer, g, tx2)
        (gemv,) = cublas.primitives()
        cub = gemv.estimate_ms(layer, g, tx2)
        assert van / cub >= 4.0

    def test_cudnn_has_no_fc(self, tx2):
        g, layer = one_layer(
            "fc", out_channels=1000, input_shape=TensorShape(1024, 1, 1)
        )
        assert not any(p.supports(layer, g) for p in cudnn.primitives())


class TestDepthwiseStory:
    """Claim: MobileNet >1.4x by pulling depth-wise layers to ArmCL."""

    @pytest.mark.parametrize("channels,size", [(128, 56), (512, 14), (1024, 7)])
    def test_armcl_dw_beats_cudnn_dw_at_mobilenet_shapes(self, tx2, channels, size):
        g, layer = one_layer(
            "depthwise", kernel=3, padding=1,
            input_shape=TensorShape(channels, size, size),
        )
        acl = armcl.ArmclDepthwiseConv().estimate_ms(layer, g, tx2)
        cud = cudnn.CudnnDepthwiseConv().estimate_ms(layer, g, tx2)
        assert acl < cud

    def test_cudnn_pointwise_beats_armcl_on_big_1x1(self, tx2):
        g, layer = one_layer(
            "conv", out_channels=512, kernel=1,
            input_shape=TensorShape(512, 14, 14),
        )
        acl = armcl.ArmclGemmConv().estimate_ms(layer, g, tx2)
        cud = cudnn.CudnnImplicitGemmConv().estimate_ms(layer, g, tx2)
        assert cud < acl


class TestLenetPureCpu:
    """Claim: LeNet-5's fastest GPGPU schedule is pure CPU (launch and
    transfer overheads dominate tiny layers)."""

    def test_gpu_launch_overhead_dominates_tiny_conv(self, tx2):
        g, layer = one_layer(
            "conv", out_channels=20, kernel=5, input_shape=TensorShape(1, 28, 28)
        )
        cud = cudnn.CudnnImplicitGemmConv().estimate_ms(layer, g, tx2)
        cpu = blas.BlasIm2colConv("openblas").estimate_ms(layer, g, tx2)
        assert cpu < cud

    def test_transfer_floor_exceeds_tiny_layer_time(self, tx2):
        tiny = TensorShape(20, 12, 12)
        transfer = tx2.transfer_ms(tiny.nbytes)
        g, layer = one_layer(
            "pool_max", kernel=2, input_shape=TensorShape(20, 24, 24)
        )
        cpu_pool = nnpack.NnpackMaxPool().estimate_ms(layer, g, tx2)
        assert transfer > cpu_pool


class TestBigConvGpuWins:
    """Claim: GPGPU-mode speedups of hundreds-x over Vanilla require the
    GPU to crush large convolutions."""

    def test_cudnn_beats_best_cpu_by_10x_on_vgg_conv(self, tx2):
        g, layer = one_layer(
            "conv", out_channels=512, kernel=3, padding=1,
            input_shape=TensorShape(512, 28, 28),
        )
        cud = cudnn.CudnnWinogradConv().estimate_ms(layer, g, tx2)
        acl = armcl.ArmclWinograd4x4Conv().estimate_ms(layer, g, tx2)
        assert acl / cud >= 10.0


class TestCpuLibraryCrossovers:
    """Claim: the CPU-mode search has real choices to make (QS > BSL)."""

    def test_nnpack_wins_shallow_armcl_wins_deep(self, tx2):
        shallow_g, shallow = one_layer(
            "conv", out_channels=64, kernel=3, padding=1,
            input_shape=TensorShape(3, 224, 224),
        )
        deep_g, deep = one_layer(
            "conv", out_channels=512, kernel=3, padding=1,
            input_shape=TensorShape(512, 14, 14),
        )
        nnp_shallow = nnpack.NnpackWinogradConv().estimate_ms(shallow, shallow_g, tx2)
        acl_shallow = armcl.ArmclWinogradConv().estimate_ms(shallow, shallow_g, tx2)
        nnp_deep = nnpack.NnpackWinogradConv().estimate_ms(deep, deep_g, tx2)
        acl_deep = armcl.ArmclWinogradConv().estimate_ms(deep, deep_g, tx2)
        assert nnp_shallow < acl_shallow
        assert acl_deep < nnp_deep

    def test_fft_owns_5x5_on_cpu(self, tx2):
        g, layer = one_layer(
            "conv", out_channels=256, kernel=5, padding=2,
            input_shape=TensorShape(96, 27, 27),
        )
        fft = nnpack.NnpackFFTConv().estimate_ms(layer, g, tx2)
        gemm = armcl.ArmclGemmConv().estimate_ms(layer, g, tx2)
        assert fft < gemm

    def test_sparse_wins_fc_on_cpu(self, tx2):
        from repro.backends import sparse

        g, layer = one_layer(
            "fc", out_channels=4096, input_shape=TensorShape(512, 7, 7)
        )
        sp = sparse.SparseFullyConnected().estimate_ms(layer, g, tx2)
        acl = armcl.ArmclFullyConnected().estimate_ms(layer, g, tx2)
        assert sp < acl


class TestPaperNumbers:
    """Claims quoted verbatim in the paper, at the whole-network level.

    These re-derive the two headline numbers from profiled LUTs (slower
    than the unit checks above, but they pin the end-to-end outcome).
    """

    def test_max_candidates_is_13(self, tx2):
        """'the maximum number of different primitives for a layer,
        taking all the variants, is 13' (§VI-A)."""
        from repro.backends import gpgpu_space

        space = gpgpu_space(tx2)
        assert space.max_candidates(build_network("vgg19")) == 13

    def test_gpgpu_search_beats_vendor_library_on_mobilenet(self, tx2):
        from repro.analysis._cache import cached_lut
        from repro.baselines import chain_dp
        from repro.baselines.best_single_library import single_library_schedule

        lut = cached_lut("mobilenet_v1", Mode.GPGPU, tx2, seed=0)
        cudnn_only = single_library_schedule(lut, "cudnn").total_ms
        optimum = chain_dp(lut).best_ms
        assert cudnn_only / optimum >= 1.4  # the paper's 'over 1.4x'
