"""Per-library tests: coverage, layouts, processors and speed ordering.

These encode the qualitative facts the paper's results rest on:
cuDNN has no FC primitive, ArmCL has the only fast depth-wise kernel,
Vanilla covers everything, tuned BLAS crushes Vanilla on convolutions.
"""

from __future__ import annotations

import pytest

from repro.backends import armcl, blas, cublas, cudnn, nnpack, sparse, vanilla
from repro.backends.layout import Layout
from repro.errors import UnsupportedLayerError
from repro.hw import jetson_tx2
from repro.hw.processor import ProcessorKind
from repro.nn.builder import NetworkBuilder
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


@pytest.fixture(scope="module")
def tx2():
    return jetson_tx2()


@pytest.fixture(scope="module")
def net():
    b = NetworkBuilder("libnet", TensorShape(32, 28, 28))
    b.conv("conv3", out_channels=64, kernel=3, padding=1)
    b.conv("conv5", out_channels=64, kernel=5, padding=2)
    b.conv("conv1", out_channels=64, kernel=1)
    b.conv("conv3s2", out_channels=64, kernel=3, stride=2, padding=1)
    b.depthwise("dw", kernel=3, padding=1, after="conv3")
    b.batch_norm("bn")
    b.relu("relu")
    b.pool_max("pool", kernel=2)
    b.pool_avg("avgpool", kernel=2, after="relu")
    b.lrn("lrn", after="relu")
    b.softmax("sm", after="relu")
    b.fc("fc", out_channels=100, after="pool")
    b.concat("cat", inputs=["conv3", "dw"])
    b.add("add", inputs=["conv3", "dw"])
    return b.build(check_single_output=False)


def find(prims, uid_part):
    matches = [p for p in prims if uid_part in p.uid]
    assert matches, f"no primitive matching {uid_part!r}"
    return matches[0]


def supported_kinds(prim, net):
    return {l.kind for l in net.layers() if prim.supports(l, net)}


class TestVanilla:
    def test_full_coverage(self, net):
        prims = vanilla.primitives()
        for layer in net.layers():
            assert any(p.supports(layer, net) for p in prims), layer.name

    def test_all_cpu_nchw(self):
        for p in vanilla.primitives():
            assert p.processor is ProcessorKind.CPU
            assert p.layout is Layout.NCHW

    def test_conv_is_slow(self, net, tx2):
        layer = net.layer("conv3")
        van = find(vanilla.primitives(), "direct.conv")
        fast = find(blas.primitives(), "im2col@openblas")
        assert van.estimate_ms(layer, net, tx2) > 5 * fast.estimate_ms(layer, net, tx2)

    def test_unsupported_raises(self, net, tx2):
        van_conv = find(vanilla.primitives(), "direct.conv")
        with pytest.raises(UnsupportedLayerError):
            van_conv.estimate_ms(net.layer("relu"), net, tx2)

    def test_flatten_is_nearly_free(self, tx2):
        b = NetworkBuilder("f", TensorShape(4, 4, 4))
        b.flatten("fl")
        g = b.build()
        p = find(vanilla.primitives(), "view.flatten")
        assert p.estimate_ms(g.layer("fl"), g, tx2) <= 0.01


class TestBlas:
    def test_covers_conv_and_fc_only(self, net):
        kinds = set()
        for p in blas.primitives():
            kinds |= supported_kinds(p, net)
        assert kinds == {LayerKind.CONV, LayerKind.FULLY_CONNECTED}

    def test_openblas_faster_than_atlas(self, net, tx2):
        layer = net.layer("conv3")
        ob = find(blas.primitives(), "im2col@openblas")
        at = find(blas.primitives(), "im2col@atlas")
        assert ob.estimate_ms(layer, net, tx2) < at.estimate_ms(layer, net, tx2)

    def test_kn2row_best_lowering_for_1x1(self, net, tx2):
        layer = net.layer("conv1")
        kn = find(blas.primitives(), "kn2row@openblas")
        im = find(blas.primitives(), "im2col@openblas")
        assert kn.estimate_ms(layer, net, tx2) < im.estimate_ms(layer, net, tx2)

    def test_kn2row_requires_unit_stride(self, net):
        kn = find(blas.primitives(), "kn2row@openblas")
        assert not kn.supports(net.layer("conv3s2"), net)

    def test_im2row_is_nhwc(self):
        assert find(blas.primitives(), "im2row@openblas").layout is Layout.NHWC

    def test_im2col_is_nchw(self):
        assert find(blas.primitives(), "im2col@openblas").layout is Layout.NCHW

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            blas.BlasIm2colConv("mkl")

    def test_uid_contains_blas_name(self):
        assert "@openblas" in find(blas.primitives(), "im2col@openblas").uid


class TestNnpack:
    def test_winograd_only_3x3_stride1(self, net):
        wino = find(nnpack.primitives(), "winograd")
        assert wino.supports(net.layer("conv3"), net)
        assert not wino.supports(net.layer("conv5"), net)
        assert not wino.supports(net.layer("conv3s2"), net)

    def test_fft_only_kernel_5_plus(self, net):
        fft = find(nnpack.primitives(), "fft")
        assert fft.supports(net.layer("conv5"), net)
        assert not fft.supports(net.layer("conv3"), net)
        assert not fft.supports(net.layer("conv1"), net)

    def test_fft_beats_gemm_on_5x5(self, net, tx2):
        layer = net.layer("conv5")
        fft = find(nnpack.primitives(), "fft")
        gemm = find(blas.primitives(), "im2col@openblas")
        assert fft.estimate_ms(layer, net, tx2) < gemm.estimate_ms(layer, net, tx2)

    def test_no_batch_norm(self, net):
        for p in nnpack.primitives():
            assert not p.supports(net.layer("bn"), net)

    def test_no_avg_pool(self, net):
        for p in nnpack.primitives():
            assert not p.supports(net.layer("avgpool"), net)

    def test_no_depthwise(self, net):
        for p in nnpack.primitives():
            assert not p.supports(net.layer("dw"), net)


class TestArmcl:
    def test_all_nhwc_cpu(self):
        for p in armcl.primitives():
            assert p.layout is Layout.NHWC
            assert p.processor is ProcessorKind.CPU

    def test_winograd_shallow_channels_lose_to_nnpack(self, tx2):
        b = NetworkBuilder("shallow", TensorShape(3, 64, 64))
        b.conv("c", out_channels=16, kernel=3, padding=1)
        g = b.build()
        layer = g.layer("c")
        acl = find(armcl.primitives(), "winograd")
        nnp = find(nnpack.primitives(), "winograd")
        assert nnp.estimate_ms(layer, g, tx2) < acl.estimate_ms(layer, g, tx2)

    def test_winograd_deep_channels_beat_nnpack(self, tx2):
        b = NetworkBuilder("deep", TensorShape(512, 14, 14))
        b.conv("c", out_channels=512, kernel=3, padding=1)
        g = b.build()
        layer = g.layer("c")
        acl = find(armcl.primitives(), "winograd")
        nnp = find(nnpack.primitives(), "winograd")
        assert acl.estimate_ms(layer, g, tx2) < nnp.estimate_ms(layer, g, tx2)

    def test_depthwise_fastest_on_platform(self, net, tx2):
        layer = net.layer("dw")
        acl = find(armcl.primitives(), "depthwise")
        van = find(vanilla.primitives(), "depthwise")
        cud = find(cudnn.primitives(), "depthwise")
        acl_ms = acl.estimate_ms(layer, net, tx2)
        assert acl_ms < van.estimate_ms(layer, net, tx2)
        assert acl_ms < cud.estimate_ms(layer, net, tx2)

    def test_eltwise_has_dispatch_overhead(self, tx2):
        b = NetworkBuilder("tiny", TensorShape(2, 2, 2))
        b.relu("r")
        g = b.build()
        layer = g.layer("r")
        acl = find(armcl.primitives(), "direct.eltwise")
        van = find(vanilla.primitives(), "direct.eltwise")
        # On a tiny tensor Vanilla's bare loop beats ArmCL's dispatch.
        assert van.estimate_ms(layer, g, tx2) < acl.estimate_ms(layer, g, tx2)

    def test_covers_lrn_and_concat(self, net):
        kinds = set()
        for p in armcl.primitives():
            kinds |= supported_kinds(p, net)
        assert LayerKind.LRN in kinds and LayerKind.CONCAT in kinds


class TestSparse:
    def test_covers_conv_and_fc_only(self, net):
        kinds = set()
        for p in sparse.primitives():
            kinds |= supported_kinds(p, net)
        assert kinds == {LayerKind.CONV, LayerKind.FULLY_CONNECTED}

    def test_sparse_fc_beats_vanilla_fc(self, tx2):
        b = NetworkBuilder("fcnet", TensorShape(256, 6, 6))
        b.fc("fc", out_channels=4096)
        g = b.build()
        layer = g.layer("fc")
        sp = find(sparse.primitives(), "csr.fc")
        van = find(vanilla.primitives(), "gemv.naive")
        assert sp.estimate_ms(layer, g, tx2) < van.estimate_ms(layer, g, tx2)

    def test_sparse_conv_loses_to_openblas(self, net, tx2):
        layer = net.layer("conv3")
        sp = find(sparse.primitives(), "csr.conv")
        ob = find(blas.primitives(), "im2col@openblas")
        assert ob.estimate_ms(layer, net, tx2) < sp.estimate_ms(layer, net, tx2)


class TestCudnn:
    def test_no_fully_connected(self, net):
        """The paper's crucial caveat (§III-B)."""
        for p in cudnn.primitives():
            assert not p.supports(net.layer("fc"), net)

    def test_all_gpu_nchw(self):
        for p in cudnn.primitives():
            assert p.processor is ProcessorKind.GPU
            assert p.layout is Layout.NCHW

    def test_winograd_beats_implicit_gemm_on_3x3(self, net, tx2):
        layer = net.layer("conv3")
        wino = find(cudnn.primitives(), "winograd")
        ig = find(cudnn.primitives(), "implicit_gemm")
        assert wino.estimate_ms(layer, net, tx2) < ig.estimate_ms(layer, net, tx2)

    def test_gpu_conv_beats_best_cpu_on_large_layer(self, tx2):
        b = NetworkBuilder("big", TensorShape(256, 56, 56))
        b.conv("c", out_channels=256, kernel=3, padding=1)
        g = b.build()
        layer = g.layer("c")
        gpu = find(cudnn.primitives(), "winograd")
        cpu = find(armcl.primitives(), "winograd")
        assert gpu.estimate_ms(layer, g, tx2) < cpu.estimate_ms(layer, g, tx2)

    def test_cpu_beats_gpu_on_tiny_layer(self, tx2):
        b = NetworkBuilder("small", TensorShape(1, 28, 28))
        b.conv("c", out_channels=20, kernel=5)
        g = b.build()
        layer = g.layer("c")
        gpu = find(cudnn.primitives(), "implicit_gemm")
        cpu = find(blas.primitives(), "im2col@openblas")
        assert cpu.estimate_ms(layer, g, tx2) < gpu.estimate_ms(layer, g, tx2)

    def test_depthwise_slow_path(self, net, tx2):
        layer = net.layer("dw")
        dw = find(cudnn.primitives(), "depthwise")
        conv = find(cudnn.primitives(), "winograd")
        # Depth-wise does far less work than the 3x3 conv but costs more.
        assert dw.estimate_ms(layer, net, tx2) > conv.estimate_ms(
            net.layer("conv3"), net, tx2
        )


class TestCublas:
    def test_fc_only(self, net):
        (gemv,) = cublas.primitives()
        assert supported_kinds(gemv, net) == {LayerKind.FULLY_CONNECTED}

    def test_beats_vanilla_fc_on_big_layer(self, tx2):
        b = NetworkBuilder("fcnet", TensorShape(256, 6, 6))
        b.fc("fc", out_channels=4096)
        g = b.build()
        layer = g.layer("fc")
        (gemv,) = cublas.primitives()
        van = find(vanilla.primitives(), "gemv.naive")
        assert gemv.estimate_ms(layer, g, tx2) < van.estimate_ms(layer, g, tx2)


class TestPrimitiveProtocol:
    def test_uids_unique_across_all_libraries(self):
        all_prims = (
            vanilla.primitives() + blas.primitives() + nnpack.primitives()
            + armcl.primitives() + sparse.primitives() + cudnn.primitives()
            + cublas.primitives()
        )
        uids = [p.uid for p in all_prims]
        assert len(set(uids)) == len(uids)

    def test_equality_by_uid(self):
        assert vanilla.VanillaDirectConv() == vanilla.VanillaDirectConv()
        assert hash(vanilla.VanillaDirectConv()) == hash(vanilla.VanillaDirectConv())

    def test_describe_mentions_processor(self):
        (gemv,) = cublas.primitives()
        assert "gpu" in gemv.describe()

    def test_repr(self):
        assert "vanilla.direct.conv" in repr(vanilla.VanillaDirectConv())

    def test_estimates_are_positive(self, net, tx2):
        all_prims = (
            vanilla.primitives() + blas.primitives() + nnpack.primitives()
            + armcl.primitives() + sparse.primitives() + cudnn.primitives()
            + cublas.primitives()
        )
        for prim in all_prims:
            for layer in net.layers():
                if prim.supports(layer, net):
                    assert prim.estimate_ms(layer, net, tx2) > 0
