"""Tests for the latency table, profiler and compatibility profiling."""

from __future__ import annotations

import pytest

from repro.backends import Mode, gpgpu_space
from repro.engine import InferenceEngineOptimizer, Profiler
from repro.engine.compat import profile_compatibility
from repro.engine.lut import LatencyTable
from repro.errors import LookupError_, ProfilingError, ScheduleError
from repro.hw import jetson_tx2
from repro.hw.processor import ProcessorKind
from repro.zoo import build_network

from tests.helpers import synthetic_chain_lut


class TestLatencyTableLookups:
    def test_layer_time_present(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        assert lut.layer_time("conv1", "vanilla.direct.conv") > 0

    def test_missing_pair_raises(self, lenet_lut_gpgpu):
        with pytest.raises(LookupError_):
            lenet_lut_gpgpu.layer_time("conv1", "cublas.gemv.sgemv")

    def test_missing_layer_raises(self, lenet_lut_gpgpu):
        with pytest.raises(LookupError_):
            lenet_lut_gpgpu.layer_time("ghost", "vanilla.direct.conv")

    def test_best_uid_is_fastest(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        best = lut.best_uid("conv2")
        assert all(
            lut.layer_time("conv2", best) <= lut.layer_time("conv2", u)
            for u in lut.candidates["conv2"]
        )

    def test_best_uid_within_subset(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        vans = {u for u in lut.candidates["conv1"] if u.startswith("vanilla")}
        assert lut.best_uid("conv1", within=vans) in vans

    def test_best_uid_empty_subset_raises(self, lenet_lut_gpgpu):
        with pytest.raises(LookupError_):
            lenet_lut_gpgpu.best_uid("conv1", within={"nope"})

    def test_penalty_same_proc_same_layout_zero(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        edge = ("conv1", "pool1")
        p = lut.penalty(edge, "vanilla.direct.conv", "vanilla.direct.pool")
        assert p == 0.0

    def test_penalty_processor_switch_positive(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        edge = ("conv1", "pool1")
        p = lut.penalty(edge, "vanilla.direct.conv", "cudnn.direct.pool")
        assert p > 0.0

    def test_penalty_layout_switch_positive(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        edge = ("conv1", "pool1")
        p = lut.penalty(edge, "armcl.gemm.neon", "vanilla.direct.pool")
        assert p > 0.0

    def test_penalty_layout_free_for_degenerate_tensor(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        # ip1 output is 500x1x1: layouts coincide, conversion is free.
        edge = ("ip1", "relu1")
        p = lut.penalty(edge, "armcl.gemv.neon", "vanilla.direct.eltwise")
        assert p == 0.0

    def test_schedule_time_matches_manual_sum(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        assignments = {l: lut.candidates[l][0] for l in lut.layers}
        manual = sum(lut.layer_time(l, assignments[l]) for l in lut.layers)
        manual += sum(
            lut.penalty(e, assignments[e[0]], assignments[e[1]])
            for e in lut.edges
        )
        assert lut.schedule_time(assignments) == pytest.approx(manual)

    def test_schedule_time_missing_layer_raises(self, lenet_lut_gpgpu):
        with pytest.raises(ScheduleError):
            lenet_lut_gpgpu.schedule_time({})


class TestIndexedLUT:
    def test_roundtrip_assignments(self, lenet_lut_gpgpu):
        idx = lenet_lut_gpgpu.indexed()
        import numpy as np

        choices = np.zeros(len(idx), dtype=np.int64)
        assignments = idx.assignments(choices)
        assert set(assignments) == set(lenet_lut_gpgpu.layers)

    def test_total_matches_schedule_time(self, lenet_lut_gpgpu):
        import numpy as np

        lut = lenet_lut_gpgpu
        idx = lut.indexed()
        rng = np.random.default_rng(3)
        for _ in range(10):
            choices = np.array(
                [rng.integers(n) for n in idx.num_actions], dtype=np.int64
            )
            assert idx.total_ms(choices) == pytest.approx(
                lut.schedule_time(idx.assignments(choices))
            )

    def test_edge_matrices_nonnegative(self, squeezenet_lut_gpgpu):
        idx = squeezenet_lut_gpgpu.indexed()
        for matrix in idx.edge_matrices:
            assert (matrix >= 0).all()

    def test_incoming_covers_all_edges(self, squeezenet_lut_gpgpu):
        idx = squeezenet_lut_gpgpu.indexed()
        assert sum(len(inc) for inc in idx.incoming) == len(idx.edges)


class TestPenaltyErrorConsistency:
    """Both penalty branches raise LookupError_, never a raw KeyError."""

    def test_missing_transfer_entry(self):
        lut = synthetic_chain_lut(3, 4, seed=2)
        edge = lut.edges[0]
        del lut.transfer_ms[edge]
        # prim0 (CPU) -> prim1 (GPU): processor switch needs a transfer.
        with pytest.raises(LookupError_):
            lut.penalty(edge, "prim0", "prim1")

    def test_missing_conversion_entry(self):
        lut = synthetic_chain_lut(3, 4, seed=2)
        edge = lut.edges[0]
        del lut.conversion_ms[edge]
        # prim0 (CPU/NCHW) -> prim2 (CPU/NHWC): layout switch only.
        with pytest.raises(LookupError_):
            lut.penalty(edge, "prim0", "prim2")

    def test_missing_conversion_processor(self):
        lut = synthetic_chain_lut(3, 4, seed=2)
        edge = lut.edges[0]
        del lut.conversion_ms[edge][ProcessorKind.CPU]
        with pytest.raises(LookupError_):
            lut.penalty(edge, "prim0", "prim2")


class TestSerialization:
    def test_json_roundtrip(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        clone = LatencyTable.from_json(lut.to_json())
        assert clone.layers == lut.layers
        assert clone.graph_name == lut.graph_name
        assert clone.times_ms == lut.times_ms
        assert clone.edges == lut.edges
        assert clone.transfer_ms == lut.transfer_ms

    def test_roundtrip_preserves_schedule_time(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        clone = LatencyTable.from_json(lut.to_json())
        assignments = {l: lut.best_uid(l) for l in lut.layers}
        assert clone.schedule_time(assignments) == pytest.approx(
            lut.schedule_time(assignments)
        )

    def test_synthetic_roundtrip(self):
        lut = synthetic_chain_lut(4, 3, seed=9)
        clone = LatencyTable.from_json(lut.to_json())
        assignments = {l: lut.candidates[l][1] for l in lut.layers}
        assert clone.schedule_time(assignments) == pytest.approx(
            lut.schedule_time(assignments)
        )

    def test_roundtrip_preserves_floats_bitwise(self):
        lut = synthetic_chain_lut(5, 4, seed=11)
        clone = LatencyTable.from_json(lut.to_json())
        assert clone.times_ms == lut.times_ms
        assert clone.conversion_ms == lut.conversion_ms
        assert clone.transfer_ms == lut.transfer_ms

    def test_roundtrip_preserves_layer_depth(self):
        """Regression: non-positional depths (branchy graphs) used to be
        dropped by to_json and silently revert to index order."""
        lut = synthetic_chain_lut(4, 3, seed=9)
        lut.layer_depth = {
            "layer0": 0, "layer1": 5, "layer2": 6, "layer3": 9
        }
        clone = LatencyTable.from_json(lut.to_json())
        assert clone.layer_depth == lut.layer_depth
        # And a second hop stays stable too (cache round-trips chain).
        again = LatencyTable.from_json(clone.to_json())
        assert again.layer_depth == lut.layer_depth

    def test_legacy_format1_payload_still_loads(self):
        """Old caches hold format-1 payloads ('u->v' string edge keys,
        no layer_depth); they must keep loading, with the positional
        depth fallback."""
        import json

        lut = synthetic_chain_lut(3, 2, seed=4)
        payload = json.loads(lut.to_json())
        del payload["format"]
        del payload["layer_depth"]
        payload["conversion_ms"] = {
            f"{u}->{v}": per_proc
            for (u, v), per_proc in payload["conversion_ms"]
        }
        payload["transfer_ms"] = {
            f"{u}->{v}": ms for (u, v), ms in payload["transfer_ms"]
        }
        clone = LatencyTable.from_json(json.dumps(payload))
        assert clone.conversion_ms.keys() == lut.conversion_ms.keys()
        assert clone.transfer_ms == lut.transfer_ms
        assert clone.layer_depth == {l: i for i, l in enumerate(lut.layers)}

    def test_legacy_ambiguous_edge_key_rejected(self):
        """A format-1 key that splits into more than two parts must fail
        loudly instead of silently corrupting the penalty tables."""
        import json

        lut = synthetic_chain_lut(3, 2, seed=4)
        payload = json.loads(lut.to_json())
        payload["transfer_ms"] = {"a->b->c": 1.0}
        with pytest.raises(ProfilingError):
            LatencyTable.from_json(json.dumps(payload))

    def test_arrow_layer_names_rejected_on_serialize(self):
        """Names containing '->' would be ambiguous to format-1 readers
        of the payload; serialization refuses them."""
        lut = synthetic_chain_lut(3, 2, seed=4)
        lut.layers[1] = "conv->relu"
        with pytest.raises(ProfilingError):
            lut.to_json()

    def test_format2_edge_tables_survive_arrowless_roundtrip(self):
        """Format 2 stores edges as JSON arrays: the keys come back as
        exact (producer, consumer) tuples, not re-split strings."""
        import json

        lut = synthetic_chain_lut(3, 2, seed=4)
        payload = json.loads(lut.to_json())
        assert payload["format"] == 2
        assert all(
            isinstance(pair, list) and len(pair) == 2
            for pair, _ in payload["conversion_ms"]
        )
        clone = LatencyTable.from_json(json.dumps(payload))
        assert clone.conversion_ms.keys() == lut.conversion_ms.keys()


class TestProfiler:
    def test_lut_complete_for_all_candidates(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        for layer, uids in lut.candidates.items():
            for uid in uids:
                assert lut.layer_time(layer, uid) > 0

    def test_inference_count_is_primitive_types_present(self, tx2=None):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        space = gpgpu_space(platform)
        profiler = Profiler(graph, space, platform, seed=0, repeats=5)
        lut, report = profiler.profile()
        # 1 vanilla pass + one per non-vanilla primitive present in LeNet.
        present = {
            p.uid
            for p in space.primitives
            if p.library != "vanilla"
            and any(p.supports(l, graph) for l in graph.layers())
        }
        assert report.network_inferences == 1 + len(present)
        assert report.compatibility_passes == 1
        assert report.total_passes == report.network_inferences + 1
        assert lut.profiling_inferences == report.network_inferences

    def test_profiling_much_cheaper_than_exhaustive(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        space = gpgpu_space(platform)
        profiler = Profiler(graph, space, platform, seed=0, repeats=5)
        _, report = profiler.profile()
        assert report.network_inferences < 50  # vs 12^8 exhaustive configs

    def test_measurements_near_true_model(self):
        quiet = jetson_tx2(noise_sigma=0.0)
        noisy = jetson_tx2(noise_sigma=0.03)
        graph = build_network("lenet5")
        lut_q = InferenceEngineOptimizer(
            graph, quiet, mode=Mode.GPGPU, seed=0
        ).profile()
        lut_n = InferenceEngineOptimizer(
            graph, noisy, mode=Mode.GPGPU, seed=0
        ).profile()
        for layer in lut_q.layers:
            for uid in lut_q.candidates[layer]:
                true = lut_q.layer_time(layer, uid)
                measured = lut_n.layer_time(layer, uid)
                assert measured == pytest.approx(true, rel=0.05)

    def test_bad_repeats_rejected(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        with pytest.raises(ProfilingError):
            Profiler(graph, gpgpu_space(platform), platform, repeats=0)


class TestCompatProfiling:
    def test_every_edge_profiled(self):
        platform = jetson_tx2()
        graph = build_network("squeezenet_v1.1")
        conversions, transfers = profile_compatibility(graph, platform)
        assert set(conversions) == set(graph.edges())
        assert set(transfers) == set(graph.edges())

    def test_cpu_only_platform_has_no_transfers(self):
        from repro.hw.presets import cpu_only

        platform = cpu_only(jetson_tx2())
        graph = build_network("lenet5")
        conversions, transfers = profile_compatibility(graph, platform)
        assert transfers == {}
        for per_proc in conversions.values():
            assert set(per_proc) == {ProcessorKind.CPU}

    def test_conversion_free_for_degenerate_edges(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        conversions, _ = profile_compatibility(graph, platform)
        # ip1 -> relu1 carries a 500x1x1 tensor: layouts equivalent.
        assert conversions[("ip1", "relu1")][ProcessorKind.CPU] == 0.0


class TestOptimizerFacade:
    def test_profile_is_cached(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        opt = InferenceEngineOptimizer(graph, platform, mode=Mode.GPGPU)
        assert opt.profile() is opt.profile()

    def test_deploy_report(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        opt = InferenceEngineOptimizer(graph, platform, mode=Mode.GPGPU)
        lut = opt.profile()
        from repro.engine.schedule import vanilla_schedule

        report = opt.deploy(vanilla_schedule(graph, opt.space))
        assert report.total_ms > 0
        assert report.libraries == ["vanilla"]
        assert "Deployment" in report.render()

    def test_deploy_matches_lut_within_noise(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        opt = InferenceEngineOptimizer(graph, platform, mode=Mode.GPGPU)
        lut = opt.profile()
        assignments = {l: lut.best_uid(l) for l in lut.layers}
        from repro.engine.schedule import NetworkSchedule

        report = opt.deploy(NetworkSchedule(graph.name, assignments))
        assert report.total_ms == pytest.approx(
            lut.schedule_time(assignments), rel=0.1
        )
