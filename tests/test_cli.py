"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestNetworksCommand:
    def test_lists_all_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "lenet5" in out and "mobilenet_v1" in out


class TestSummaryCommand:
    def test_renders_layers(self, capsys):
        assert main(["summary", "--network", "lenet5"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "GFLOPs" in out

    def test_unknown_network_exits(self):
        with pytest.raises(SystemExit):
            main(["summary", "--network", "nope"])


class TestProfileSearchRoundtrip:
    def test_profile_then_search(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        sched_path = tmp_path / "sched.json"
        assert main([
            "profile", "--network", "fig1_toy", "--mode", "gpgpu",
            "--repeats", "10", "--out", str(lut_path),
        ]) == 0
        assert lut_path.exists()
        assert main([
            "search", "--lut", str(lut_path), "--episodes", "150",
            "--out", str(sched_path),
        ]) == 0
        payload = json.loads(sched_path.read_text())
        assert payload["graph"] == "fig1_toy"
        assert payload["total_ms"] > 0
        assert set(payload["assignments"]) == {"layer1", "layer2", "layer3"}

    def test_search_no_polish_flag(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        assert main([
            "search", "--lut", str(lut_path), "--episodes", "100",
            "--no-polish",
        ]) == 0
        assert "qs-dnn" in capsys.readouterr().out

    def test_cpu_platform_choice(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        assert main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--platform", "raspberry_pi3", "--repeats", "5",
            "--out", str(lut_path),
        ]) == 0
        assert "raspberry_pi3" in capsys.readouterr().out


class TestCompareCommand:
    def test_renders_method_table(self, capsys):
        assert main([
            "compare", "--network", "fig1_toy", "--mode", "gpgpu",
            "--episodes", "120",
        ]) == 0
        out = capsys.readouterr().out
        assert "QS-DNN" in out and "PBQP" in out


class TestTable2Command:
    def test_single_network_row(self, capsys):
        assert main([
            "table2", "--mode", "cpu", "--networks", "lenet5",
            "--episodes", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "lenet5" in out and "BSL" in out


class TestReportCommand:
    def test_writes_markdown_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main([
            "report", "--networks", "fig1_toy", "--episodes", "150",
            "--out", str(out_path),
        ]) == 0
        text = out_path.read_text()
        assert "# QS-DNN reproduction report" in text
        assert text.count("Table II") == 2
        assert "fig1_toy" in text


class TestEpisodesValidation:
    """Regression: `--episodes 0` used to fall through `args.episodes
    or auto` as falsy and silently run the auto budget."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["search", "--lut", "x.json", "--episodes", "0"],
            ["compare", "--network", "fig1_toy", "--episodes", "0"],
            ["cem", "--network", "fig1_toy", "--episodes", "-5"],
            ["table2", "--episodes", "0"],
            ["campaign", "--episodes", "0"],
            ["submit", "--network", "fig1_toy", "--episodes", "0"],
            ["report", "--episodes", "0"],
            ["search", "--lut", "x.json", "--episodes", "ten"],
            ["profile", "--network", "fig1_toy", "--repeats", "0"],
        ],
    )
    def test_non_positive_episodes_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "must be >= 1" in err or "not an integer" in err

    def test_search_uses_shared_auto_budget(self, tmp_path, capsys):
        """Without --episodes, `repro search` runs the same
        auto_episodes budget as campaign/table2 jobs."""
        from repro.analysis.speedup import auto_episodes
        from repro.engine.lut import LatencyTable

        lut_path = tmp_path / "lut.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        capsys.readouterr()
        assert main(["search", "--lut", str(lut_path)]) == 0
        out = capsys.readouterr().out
        lut = LatencyTable.from_json(lut_path.read_text())
        assert f"{auto_episodes(len(lut.layers))} episodes" in out


class TestAtomicOutWrites:
    def test_out_files_leave_no_temp_litter(self, tmp_path):
        """Every --out write publishes tmp-then-replace; the directory
        must hold only the finished artifacts."""
        lut_path = tmp_path / "lut.json"
        sched_path = tmp_path / "sched.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        main([
            "search", "--lut", str(lut_path), "--episodes", "100",
            "--out", str(sched_path),
        ])
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "lut.json", "sched.json"
        ]
        json.loads(sched_path.read_text())  # complete, parseable

    def test_crash_mid_out_write_preserves_previous_schedule(
        self, tmp_path, monkeypatch
    ):
        """A crash between temp-write and publish must leave the old
        --out artifact intact (a truncated JSON used to poison later
        `repro search --lut` runs)."""
        from pathlib import Path

        lut_path = tmp_path / "lut.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        before = lut_path.read_text()

        def exploding_replace(self, other):
            raise OSError("simulated crash mid-publish")

        monkeypatch.setattr(Path, "replace", exploding_replace)
        with pytest.raises(OSError):
            main([
                "profile", "--network", "fig1_toy", "--mode", "gpgpu",
                "--repeats", "5", "--out", str(lut_path),
            ])
        monkeypatch.undo()
        assert lut_path.read_text() == before  # old artifact intact
        assert [p.name for p in tmp_path.iterdir()] == ["lut.json"]


class TestSearchValidatesLut:
    def test_corrupt_lut_rejected(self, tmp_path):
        import json

        from repro.errors import ProfilingError

        lut_path = tmp_path / "lut.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "cpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        payload = json.loads(lut_path.read_text())
        # Drop all measurements of one layer.
        payload["times_ms"]["layer2"] = {}
        lut_path.write_text(json.dumps(payload))
        with pytest.raises(ProfilingError):
            main(["search", "--lut", str(lut_path), "--episodes", "50"])


class TestCampaignCommand:
    def test_grid_with_cache_and_json_out(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        args = [
            "campaign", "--networks", "fig1_toy", "--modes", "cpu", "gpgpu",
            "--episodes", "150", "--jobs", "2",
            "--cache-dir", str(tmp_path / "luts"), "--out", str(out_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Table II (cpu mode)" in out
        assert "Table II (gpgpu mode)" in out
        assert "2 jobs" in out and "2 worker(s)" in out
        payload = json.loads(out_path.read_text())
        assert len(payload) == 2
        assert payload[0]["job"]["network"] == "fig1_toy"
        assert payload[0]["result"]["qsdnn_ms"] > 0
        # Second run hits the LUT cache for every job.
        assert main(args) == 0
        assert "2 LUT cache hit(s)" in capsys.readouterr().out

    def test_compare_kind(self, capsys):
        assert main([
            "campaign", "--networks", "fig1_toy", "--modes", "cpu",
            "--episodes", "150", "--kind", "compare",
        ]) == 0
        out = capsys.readouterr().out
        assert "QS-DNN" in out and "PBQP" in out

    def test_table2_jobs_flag(self, capsys):
        assert main([
            "table2", "--networks", "fig1_toy", "--mode", "cpu",
            "--episodes", "150", "--jobs", "2",
        ]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_multi_seed_kind(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        assert main([
            "campaign", "--networks", "fig1_toy", "--modes", "gpgpu",
            "--episodes", "120", "--kind", "multi-seed",
            "--seeds-per-job", "3", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "multi-seed qs-dnn" in out and "3 seeds" in out
        payload = json.loads(out_path.read_text())
        assert len(payload[0]["result"]["results"]) == 3


class TestPopulationCommands:
    @pytest.mark.parametrize("command,method", [("cem", "cem"), ("ga", "genetic")])
    def test_runs_and_saves_schedule(self, command, method, tmp_path, capsys):
        sched_path = tmp_path / "sched.json"
        assert main([
            command, "--network", "fig1_toy", "--mode", "gpgpu",
            "--episodes", "150", "--population", "16",
            "--out", str(sched_path),
        ]) == 0
        assert method in capsys.readouterr().out
        payload = json.loads(sched_path.read_text())
        assert payload["method"] == method
        assert payload["total_ms"] > 0
        assert set(payload["assignments"]) == {"layer1", "layer2", "layer3"}


class TestMultiSeedSearchCommand:
    def test_lockstep_sweep(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        main([
            "profile", "--network", "fig1_toy", "--mode", "gpgpu",
            "--repeats", "5", "--out", str(lut_path),
        ])
        capsys.readouterr()
        assert main([
            "search", "--lut", str(lut_path), "--episodes", "120",
            "--seeds", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("qs-dnn on fig1_toy") >= 3
        assert "multi-seed qs-dnn" in out and "3 seeds" in out
