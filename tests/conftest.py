"""Shared fixtures: platforms, networks, and session-scoped LUTs."""

from __future__ import annotations

import pytest

from repro import Mode, jetson_tx2
from repro.engine import InferenceEngineOptimizer
from repro.hw.presets import cpu_only
from repro.zoo import build_network


@pytest.fixture(scope="session")
def tx2():
    """The calibrated Jetson TX-2 model."""
    return jetson_tx2()


@pytest.fixture(scope="session")
def tx2_quiet():
    """TX-2 with measurement noise disabled (exact model times)."""
    return jetson_tx2(noise_sigma=0.0)


@pytest.fixture(scope="session")
def tx2_cpu_only(tx2):
    """The TX-2's CPU alone (CPU-mode platform)."""
    return cpu_only(tx2)


@pytest.fixture(scope="session")
def lenet():
    return build_network("lenet5")


@pytest.fixture(scope="session")
def toy():
    return build_network("fig1_toy")


@pytest.fixture(scope="session")
def mobilenet():
    return build_network("mobilenet_v1")


def _profile(network_name: str, platform, mode: Mode, seed: int = 0):
    graph = build_network(network_name)
    optimizer = InferenceEngineOptimizer(graph, platform, mode=mode, seed=seed)
    return optimizer.profile()


@pytest.fixture(scope="session")
def lenet_lut_gpgpu(tx2):
    """LeNet-5 profiled in GPGPU mode (small, fast, heterogeneous)."""
    return _profile("lenet5", tx2, Mode.GPGPU)


@pytest.fixture(scope="session")
def lenet_lut_cpu(tx2):
    """LeNet-5 profiled in CPU mode."""
    return _profile("lenet5", tx2, Mode.CPU)


@pytest.fixture(scope="session")
def toy_lut_gpgpu(tx2):
    """The Fig. 1 toy network profiled in GPGPU mode."""
    return _profile("fig1_toy", tx2, Mode.GPGPU)


@pytest.fixture(scope="session")
def squeezenet_lut_gpgpu(tx2):
    """SqueezeNet (branchy) profiled in GPGPU mode."""
    return _profile("squeezenet_v1.1", tx2, Mode.GPGPU)
