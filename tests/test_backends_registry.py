"""Tests for design-space construction (CPU vs GPGPU modes)."""

from __future__ import annotations

import pytest

from repro.backends import Mode, cpu_space, design_space, gpgpu_space
from repro.backends.registry import DesignSpace
from repro.backends import vanilla
from repro.errors import ConfigError, NoPrimitiveError
from repro.hw import jetson_tx2
from repro.hw.presets import cpu_only
from repro.hw.processor import ProcessorKind
from repro.zoo import build_network


@pytest.fixture(scope="module")
def tx2():
    return jetson_tx2()


@pytest.fixture(scope="module")
def vgg(tx2):
    return build_network("vgg19")


class TestModes:
    def test_cpu_space_has_no_gpu_primitives(self, tx2):
        space = cpu_space(tx2)
        assert all(p.processor is ProcessorKind.CPU for p in space.primitives)

    def test_gpgpu_space_has_both(self, tx2):
        space = gpgpu_space(tx2)
        procs = {p.processor for p in space.primitives}
        assert procs == {ProcessorKind.CPU, ProcessorKind.GPU}

    def test_gpgpu_mode_needs_gpu(self, tx2):
        with pytest.raises(ConfigError):
            gpgpu_space(cpu_only(tx2))

    def test_design_space_dispatch(self, tx2):
        assert design_space(Mode.CPU, tx2).mode is Mode.CPU
        assert design_space(Mode.GPGPU, tx2).mode is Mode.GPGPU

    def test_library_lists(self, tx2):
        cpu_libs = set(cpu_space(tx2).library_names())
        gpu_libs = set(gpgpu_space(tx2).library_names())
        assert cpu_libs == {"vanilla", "blas", "nnpack", "armcl", "sparse"}
        assert gpu_libs == cpu_libs | {"cudnn", "cublas"}


class TestCandidates:
    def test_every_layer_has_candidates(self, tx2, vgg):
        space = gpgpu_space(tx2)
        for layer in vgg.layers():
            assert len(space.candidates(layer, vgg)) >= 1

    def test_vanilla_always_present(self, tx2, vgg):
        space = gpgpu_space(tx2)
        for layer in vgg.layers():
            libs = {p.library for p in space.candidates(layer, vgg)}
            assert "vanilla" in libs

    def test_max_candidates_close_to_paper_13(self, tx2, vgg):
        """Paper §VI-A: 'the maximum number of different primitives for
        a layer, taking all the variants, is 13'."""
        assert gpgpu_space(tx2).max_candidates(vgg) in range(11, 14)

    def test_candidates_sorted_stable(self, tx2, vgg):
        space = gpgpu_space(tx2)
        layer = vgg.layer("conv1_1")
        uids = [p.uid for p in space.candidates(layer, vgg)]
        assert uids == sorted(uids)

    def test_candidates_without_vanilla_raises(self, tx2, vgg):
        space = DesignSpace(Mode.CPU, tx2, primitives=[])
        with pytest.raises(NoPrimitiveError):
            space.candidates(vgg.layer("conv1_1"), vgg)

    def test_space_size_grows_with_network(self, tx2):
        space = gpgpu_space(tx2)
        small = build_network("lenet5")
        big = build_network("vgg19")
        assert space.space_size_log10(big) > space.space_size_log10(small)

    def test_primitive_lookup(self, tx2):
        space = gpgpu_space(tx2)
        assert space.primitive("vanilla.direct.conv").library == "vanilla"
        with pytest.raises(NoPrimitiveError):
            space.primitive("nope.nope")

    def test_primitives_of_library(self, tx2):
        space = gpgpu_space(tx2)
        assert all(
            p.library == "cudnn" for p in space.primitives_of_library("cudnn")
        )
        with pytest.raises(NoPrimitiveError):
            cpu_space(tx2).primitives_of_library("cudnn")

    def test_duplicate_uid_rejected(self, tx2):
        prims = vanilla.primitives() + [vanilla.VanillaDirectConv()]
        with pytest.raises(ConfigError):
            DesignSpace(Mode.CPU, tx2, primitives=prims)

    def test_repr(self, tx2):
        assert "gpgpu" in repr(gpgpu_space(tx2))
