"""The stdlib metrics registry and its Prometheus text exposition."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_value,
    parse_samples,
    render_sample,
)


class TestServiceFamilies:
    def test_anytime_counters_exposed_from_first_scrape(self):
        """The anytime-search trio must exist (as zero samples) before
        any checkpoint is ever written, so dashboards can rate() them
        from a fresh service."""
        from repro.core.config import ServiceConfig
        from repro.runtime.service import CampaignService

        service = CampaignService(ServiceConfig(workers=0, port=0))
        text = service.metrics.render()
        for family in (
            "repro_checkpoints_written_total",
            "repro_jobs_preempted_total",
            "repro_jobs_resumed_total",
        ):
            assert f"# TYPE {family} counter" in text
            assert parse_samples(text)[family][()] == 0.0


class TestFormatting:
    def test_integers_print_without_decimal(self):
        assert format_value(0.0) == "0"
        assert format_value(3.0) == "3"
        assert format_value(-7.0) == "-7"

    def test_floats_print_shortest_repr(self):
        assert format_value(0.25) == "0.25"
        assert format_value(1.5e-9) == "1.5e-09"

    def test_specials(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_huge_integers_stay_floats(self):
        # Past 2^53-ish, int() formatting would fake precision.
        assert "e" in format_value(1e18)

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_render_sample_with_and_without_labels(self):
        assert render_sample("up", (), 1.0) == "up 1"
        line = render_sample("jobs", (("state", "done"),), 2.0)
        assert line == 'jobs{state="done"} 2'


class TestCounter:
    def test_accumulates_per_label_set(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc(worker="a")
        counter.inc(2.0, worker="a")
        counter.inc(worker="b")
        assert counter.value(worker="a") == 3.0
        assert counter.value(worker="b") == 1.0
        assert counter.value(worker="never") == 0.0

    def test_cannot_decrease(self):
        counter = Counter("jobs_total", "jobs")
        with pytest.raises(ConfigError):
            counter.inc(-1.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigError):
            Counter("has space", "nope")
        with pytest.raises(ConfigError):
            Counter("", "nope")

    def test_untouched_family_renders_a_zero_sample(self):
        # rate() needs the series to exist from the first scrape.
        text = Counter("quiet_total", "quiet").render()
        assert "quiet_total 0" in text
        assert "# TYPE quiet_total counter" in text

    def test_thread_safety_under_contention(self):
        counter = Counter("racy_total", "racy")

        def _spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=_spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestGauge:
    def test_set_and_remove(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(4.0)
        assert gauge.value() == 4.0
        gauge.set(1.0, queue="b")
        gauge.remove(queue="b")
        assert gauge.samples() == [((), 4.0)]

    def test_callback_bare_value(self):
        gauge = Gauge("depth", "d", callback=lambda: 7)
        assert gauge.samples() == [((), 7.0)]

    def test_callback_labelled_dict(self):
        gauge = Gauge(
            "age",
            "ages",
            callback=lambda: {(("lease", "l1"),): 3.5, (("lease", "l2"),): 1.0},
        )
        assert gauge.samples() == [
            ((("lease", "l1"),), 3.5),
            ((("lease", "l2"),), 1.0),
        ]

    def test_callback_never_goes_stale(self):
        state = {"value": 1.0}
        gauge = Gauge("live", "l", callback=lambda: state["value"])
        assert gauge.samples() == [((), 1.0)]
        state["value"] = 9.0
        assert gauge.samples() == [((), 9.0)]


class TestRegistry:
    def test_get_or_create_shares_the_family(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "hits")
        b = registry.counter("hits_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "t")
        with pytest.raises(ConfigError):
            registry.gauge("thing", "t")

    def test_render_order_is_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b")
        registry.gauge("a_depth", "a")
        text = registry.render()
        assert text.index("b_total") < text.index("a_depth")
        assert text.endswith("\n")

    def test_empty_registry_renders_a_newline(self):
        assert MetricsRegistry().render() == "\n"


class TestParseSamples:
    def test_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs processed")
        counter.inc(3, worker="w1-a")
        counter.inc(0.5, worker="w2-b")
        registry.gauge("depth", "queue depth").set(4)
        parsed = parse_samples(registry.render())
        assert parsed["jobs_total"][(("worker", "w1-a"),)] == 3.0
        assert parsed["jobs_total"][(("worker", "w2-b"),)] == 0.5
        assert parsed["depth"][()] == 4.0

    def test_round_trip_with_hostile_label_values(self):
        registry = MetricsRegistry()
        hostile = 'quo"te\\slash\nnewline,comma'
        registry.counter("odd_total", "odd").inc(labelled=hostile)
        parsed = parse_samples(registry.render())
        assert parsed["odd_total"][(("labelled", hostile),)] == 1.0

    def test_comments_and_blanks_skipped(self):
        parsed = parse_samples("# HELP x y\n# TYPE x counter\n\nx 1\n")
        assert parsed == {"x": {(): 1.0}}

    def test_malformed_lines_raise(self):
        with pytest.raises(ConfigError):
            parse_samples("justonetoken\n")
        with pytest.raises(ConfigError):
            parse_samples("name{unclosed 1\n")
        with pytest.raises(ConfigError):
            parse_samples("name not-a-number\n")


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = Histogram("lat_seconds", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        parsed = parse_samples(histogram.render())
        buckets = parsed["lat_seconds_bucket"]
        assert buckets[(("le", "0.1"),)] == 1.0
        assert buckets[(("le", "1"),)] == 3.0  # cumulative, not per-bin
        assert buckets[(("le", "10"),)] == 4.0
        assert buckets[(("le", "+Inf"),)] == 5.0  # every observation
        assert parsed["lat_seconds_sum"][()] == 56.05
        assert parsed["lat_seconds_count"][()] == 5.0

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", "", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le is inclusive
        parsed = parse_samples(histogram.render())
        assert parsed["h_bucket"][(("le", "1"),)] == 1.0

    def test_labelled_series_stay_separate(self):
        histogram = Histogram("h", "", buckets=(1.0,))
        histogram.observe(0.5, mode="a")
        histogram.observe(2.0, mode="b")
        assert histogram.value(mode="a") == 1.0
        assert histogram.value(mode="b") == 1.0
        assert histogram.sum_value(mode="a") == 0.5
        assert histogram.sum_value(mode="b") == 2.0
        parsed = parse_samples(histogram.render())
        assert parsed["h_bucket"][(("le", "1"), ("mode", "a"))] == 1.0
        assert parsed["h_bucket"][(("le", "1"), ("mode", "b"))] == 0.0

    def test_untouched_histogram_renders_zero_series(self):
        parsed = parse_samples(Histogram("h", "", buckets=(1.0,)).render())
        assert parsed["h_bucket"][(("le", "+Inf"),)] == 0.0
        assert parsed["h_sum"][()] == 0.0
        assert parsed["h_count"][()] == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ConfigError):
            Histogram("h", "", buckets=())
        with pytest.raises(ConfigError):
            Histogram("h", "", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram("h", "", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram("h", "", buckets=(1.0, float("inf")))


class TestRegistryHistogram:
    def test_get_or_create_shares_one_family(self):
        registry = MetricsRegistry()
        first = registry.histogram("h_seconds", "x", buckets=(1.0, 2.0))
        second = registry.histogram("h_seconds", buckets=(9.0,))
        assert second is first
        assert second.bounds == (1.0, 2.0)  # creation-time buckets win

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n_total", "x")
        with pytest.raises(ConfigError):
            registry.histogram("n_total")
        registry.histogram("h_seconds", "x")
        with pytest.raises(ConfigError):
            registry.gauge("h_seconds")
