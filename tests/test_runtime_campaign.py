"""The campaign runtime: job grids, sharding, and the LUT disk cache."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.compare import MethodComparison, compare_methods_many
from repro.analysis.speedup import Table2Row, run_table2
from repro.backends.registry import Mode
from repro.errors import ConfigError
from repro.hw import jetson_tx2
from repro.runtime.campaign import (
    Campaign,
    CampaignJob,
    execute_job,
    grid,
    load_or_profile_lut,
    lut_cache_path,
    release_shared_tables,
)

EPISODES = 120  # small but >= the 20-episode floor of the paper schedule


class TestCampaignJob:
    def test_rejects_unknown_network(self):
        with pytest.raises(ConfigError):
            CampaignJob(network="nope")

    def test_rejects_unknown_platform(self):
        with pytest.raises(ConfigError):
            CampaignJob(network="lenet5", platform="beagleboard")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            CampaignJob(network="lenet5", kind="wat")

    def test_label(self):
        job = CampaignJob(network="lenet5", mode="gpgpu", seed=3)
        assert job.label == "lenet5/jetson_tx2/gpgpu/seed3"

    def test_grid_cross_product(self):
        jobs = grid(
            ["lenet5", "fig1_toy"], modes=["cpu", "gpgpu"], seeds=[0, 1]
        )
        assert len(jobs) == 8
        assert len({(j.network, j.mode, j.seed) for j in jobs}) == 8


class TestLutCache:
    def test_miss_then_hit(self, tmp_path):
        job = CampaignJob(network="fig1_toy", mode="cpu", episodes=EPISODES)
        lut, cached = load_or_profile_lut(job, tmp_path)
        assert not cached
        assert lut_cache_path(tmp_path, job).exists()
        again, cached = load_or_profile_lut(job, tmp_path)
        assert cached
        # The JSON round-trip preserves pricing exactly.
        engine, engine2 = lut.engine(), again.engine()
        choices = [0] * len(engine)
        assert engine.price(choices) == engine2.price(choices)

    def test_cache_keys_are_distinct(self, tmp_path):
        a = CampaignJob(network="fig1_toy", mode="cpu")
        b = CampaignJob(network="fig1_toy", mode="gpgpu")
        c = CampaignJob(network="fig1_toy", mode="cpu", seed=1)
        paths = {lut_cache_path(tmp_path, j) for j in (a, b, c)}
        assert len(paths) == 3

    def test_no_cache_dir_profiles_fresh(self):
        job = CampaignJob(network="fig1_toy", mode="cpu")
        lut, cached = load_or_profile_lut(job, None)
        assert not cached and lut.graph_name == "fig1_toy"


class TestExecuteJob:
    def test_table2_payload(self, tmp_path):
        job = CampaignJob(network="fig1_toy", mode="cpu", episodes=EPISODES)
        result = execute_job(job, tmp_path)
        assert isinstance(result.payload, Table2Row)
        assert result.payload.network == "fig1_toy"
        assert result.payload.qsdnn_ms > 0
        assert not result.lut_from_cache
        assert execute_job(job, tmp_path).lut_from_cache

    def test_compare_payload(self):
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="compare"
        )
        result = execute_job(job, None)
        assert isinstance(result.payload, MethodComparison)
        assert result.payload.optimal_ms is not None  # toy net is a chain
        assert result.payload.cem_ms > 0 and result.payload.ga_ms > 0

    @pytest.mark.parametrize("kind,method", [("cem", "cem"), ("ga", "genetic")])
    def test_population_baseline_payloads(self, kind, method):
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind=kind
        )
        result = execute_job(job, None)
        assert result.payload.method == method
        assert result.payload.best_ms > 0

    def test_search_payload_matches_direct_run(self):
        """kind="search" is bitwise the same search `repro search` runs."""
        from repro.core import QSDNNSearch, SearchConfig, SearchResult

        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        result = execute_job(job)
        assert isinstance(result.payload, SearchResult)
        lut, _ = load_or_profile_lut(job)
        direct = QSDNNSearch(lut, SearchConfig(episodes=EPISODES)).run()
        assert result.payload.best_ms == direct.best_ms
        assert result.payload.curve_ms == direct.curve_ms

    def test_multi_seed_payload(self):
        from repro.core import MultiSeedResult

        job = CampaignJob(
            network="fig1_toy",
            mode="gpgpu",
            episodes=EPISODES,
            kind="multi-seed",
            seeds=3,
        )
        result = execute_job(job, None)
        assert isinstance(result.payload, MultiSeedResult)
        assert len(result.payload.results) == 3
        assert result.payload.seeds == [0, 1, 2]

    def test_rejects_bad_seed_count(self):
        with pytest.raises(ConfigError):
            CampaignJob(network="fig1_toy", kind="multi-seed", seeds=0)


class TestCampaign:
    def test_rejects_empty_and_bad_workers(self):
        with pytest.raises(ConfigError):
            Campaign([])
        with pytest.raises(ConfigError):
            Campaign([CampaignJob(network="fig1_toy")], workers=0)

    def test_serial_run_preserves_job_order(self, tmp_path):
        jobs = grid(["fig1_toy", "lenet5"], modes=["cpu"], episodes=EPISODES)
        results = Campaign(jobs, workers=1, cache_dir=tmp_path).run()
        assert [r.payload.network for r in results] == ["fig1_toy", "lenet5"]

    def test_parallel_equals_serial(self, tmp_path):
        jobs = grid(
            ["fig1_toy"], modes=["cpu", "gpgpu"], episodes=EPISODES
        )
        serial = Campaign(jobs, workers=1, cache_dir=tmp_path).run()
        parallel = Campaign(jobs, workers=2, cache_dir=tmp_path).run()
        for s, p in zip(serial, parallel):
            assert s.job == p.job
            assert s.payload.qsdnn_ms == p.payload.qsdnn_ms
            assert s.payload.rs_ms == p.payload.rs_ms
        assert all(r.lut_from_cache for r in parallel)


class TestLutMemo:
    def test_memo_serves_repeat_calls_without_reparsing(self, tmp_path):
        job = CampaignJob(network="fig1_toy", mode="cpu", episodes=EPISODES)
        first, cached = load_or_profile_lut(job, tmp_path)
        assert not cached
        again, cached = load_or_profile_lut(job, tmp_path)
        assert cached
        # Same object: the indexed()/engine() caches stay warm across
        # jobs in one process instead of being rebuilt per job.
        assert again is first

    def test_memo_is_scoped_to_the_cache_identity(self, tmp_path):
        job = CampaignJob(network="fig1_toy", mode="cpu", episodes=EPISODES)
        load_or_profile_lut(job, tmp_path / "a")
        # A different cache directory is a different world: the first
        # call against it must profile (and report from_cache=False),
        # never be answered by another cache's memo entry.
        lut, cached = load_or_profile_lut(job, tmp_path / "b")
        assert not cached
        assert lut.graph_name == "fig1_toy"

    def test_no_cache_means_no_memo(self):
        job = CampaignJob(network="fig1_toy", mode="cpu", episodes=EPISODES)
        a, cached_a = load_or_profile_lut(job, None)
        b, cached_b = load_or_profile_lut(job, None)
        assert not cached_a and not cached_b
        assert a is not b  # fresh profile every call, as documented


class TestSharedTables:
    def test_one_segment_per_unique_lut_key(self, tmp_path):
        jobs = grid(
            ["fig1_toy"], modes=["cpu", "gpgpu"], seeds=[0, 1],
            episodes=EPISODES,
        )
        Campaign(jobs, workers=1, cache_dir=tmp_path).run()  # warm cache
        camp = Campaign(jobs, workers=2, cache_dir=tmp_path)
        exported = camp.export_shared_tables()
        try:
            # 4 jobs, but (mode x seed) gives 4 distinct LUT keys here;
            # duplicate-key jobs must share, so re-listing the same
            # jobs twice still exports the same segments.
            assert len(exported) == 4
            doubled = Campaign(
                jobs + jobs, workers=2, cache_dir=tmp_path
            ).export_shared_tables()
            try:
                assert len(doubled) == len(exported)
            finally:
                release_shared_tables(doubled)
        finally:
            release_shared_tables(exported)

    def test_peek_miss_exports_nothing(self, tmp_path):
        jobs = grid(["fig1_toy"], modes=["cpu"], episodes=EPISODES)
        camp = Campaign(jobs, workers=2, cache_dir=tmp_path)
        assert camp.export_shared_tables() == {}  # cold cache: no export
        camp_nocache = Campaign(jobs, workers=2)
        assert camp_nocache.export_shared_tables() == {}

    def test_job_with_shared_segment_prices_bitwise(self, tmp_path):
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, kind="search"
        )
        plain = execute_job(job, tmp_path)
        camp = Campaign([job], workers=2, cache_dir=tmp_path)
        exported = camp.export_shared_tables()
        try:
            (shared,) = exported.values()
            from repro.runtime.campaign import _ATTACHED_TABLES, _LUT_MEMO

            _LUT_MEMO.clear()  # force a fresh attach path in-process
            result = execute_job(job, tmp_path, None, shared.name)
            assert shared.name in _ATTACHED_TABLES
            assert result.payload.best_ms == plain.payload.best_ms
            assert result.payload.curve_ms == plain.payload.curve_ms
        finally:
            release_shared_tables(exported)

    def test_bogus_segment_name_degrades_to_private_engine(self, tmp_path):
        job = CampaignJob(
            network="fig1_toy", mode="cpu", episodes=EPISODES, kind="search"
        )
        plain = execute_job(job, tmp_path)
        from repro.runtime.campaign import _LUT_MEMO

        _LUT_MEMO.clear()
        result = execute_job(job, tmp_path, None, "repro-gone-segment")
        assert result.payload.best_ms == plain.payload.best_ms

    def test_parallel_run_unlinks_all_segments(self, tmp_path):
        jobs = grid(
            ["fig1_toy"], modes=["cpu", "gpgpu"], episodes=EPISODES
        )
        Campaign(jobs, workers=1, cache_dir=tmp_path).run()
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        Campaign(jobs, workers=2, cache_dir=tmp_path).run()
        if before is not None:
            assert set(os.listdir("/dev/shm")) - before == set()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a POSIX shm mount"
    )
    def test_killed_worker_leaks_no_segments(self, tmp_path):
        """SIGKILL a pool worker mid-job: the campaign's finally must
        still unlink every exported segment, with no resource_tracker
        leak warnings at interpreter exit."""
        script = textwrap.dedent(
            """
            import multiprocessing, os, signal, sys, threading, time

            from repro.runtime.campaign import Campaign, grid

            cache = sys.argv[1]
            warm = grid(["fig1_toy"], modes=["cpu"], episodes=120)
            Campaign(warm, workers=1, cache_dir=cache).run()

            before = set(os.listdir("/dev/shm"))
            jobs = grid(
                ["fig1_toy"], modes=["cpu"], episodes=200_000,
                kind="multi-seed", seeds_per_job=8,
            )
            camp = Campaign(jobs, workers=2, cache_dir=cache)
            errors = []

            def run():
                try:
                    camp.run()
                except Exception as error:
                    errors.append(error)

            thread = threading.Thread(target=run)
            thread.start()
            deadline = time.time() + 30
            victims = []
            while time.time() < deadline and not victims:
                victims = multiprocessing.active_children()
                time.sleep(0.05)
            assert victims, "no pool worker observed"
            os.kill(victims[0].pid, signal.SIGKILL)
            thread.join(120)
            assert not thread.is_alive(), "campaign did not unwind"
            assert errors, "expected BrokenProcessPool from the kill"
            leaked = set(os.listdir("/dev/shm")) - before
            assert not leaked, f"segments leaked: {leaked}"
            print("CLEAN-EXIT")
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=240,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN-EXIT" in proc.stdout
        assert "leaked" not in proc.stderr  # resource_tracker warnings
        assert "resource_tracker" not in proc.stderr


class TestAnalysisWiring:
    def test_customized_platform_rejected(self, tmp_path):
        """Campaign workers rebuild platforms by name; a customized
        platform must fail loudly rather than silently lose its
        configuration."""
        noisy = jetson_tx2(noise_sigma=0.5)  # same name, different board
        with pytest.raises(ConfigError):
            run_table2(
                ["fig1_toy"], Mode.CPU, noisy,
                episodes=EPISODES, jobs=2, cache_dir=str(tmp_path),
            )
        from repro.hw.presets import cpu_only

        derived = cpu_only(jetson_tx2())  # name not in the registry
        with pytest.raises(ConfigError):
            compare_methods_many(
                ["fig1_toy"], Mode.CPU, derived, episodes=EPISODES
            )

    def test_run_table2_sharded(self, tmp_path):
        tx2 = jetson_tx2()
        serial = run_table2(
            ["fig1_toy"], Mode.CPU, tx2, episodes=EPISODES, seed=0
        )
        sharded = run_table2(
            ["fig1_toy"],
            Mode.CPU,
            tx2,
            episodes=EPISODES,
            seed=0,
            jobs=2,
            cache_dir=str(tmp_path),
        )
        assert serial[0].qsdnn_ms == sharded[0].qsdnn_ms
        assert serial[0].vanilla_ms == sharded[0].vanilla_ms

    def test_compare_methods_many(self, tmp_path):
        tx2 = jetson_tx2()
        comps = compare_methods_many(
            ["fig1_toy"],
            Mode.CPU,
            tx2,
            episodes=EPISODES,
            jobs=1,
            cache_dir=str(tmp_path),
        )
        assert len(comps) == 1
        assert comps[0].network == "fig1_toy"
        assert comps[0].qsdnn_ms <= comps[0].greedy_ms + 1e-9
