"""Tests for LUT integrity validation."""

from __future__ import annotations

import pytest

from repro.engine.validate import lut_problems, validate_lut
from repro.errors import ProfilingError

from tests.helpers import synthetic_chain_lut


class TestHealthyLuts:
    def test_synthetic_is_clean(self):
        assert lut_problems(synthetic_chain_lut(5, 3, seed=0)) == []

    def test_profiled_is_clean(self, lenet_lut_gpgpu):
        assert lut_problems(lenet_lut_gpgpu) == []

    def test_validate_passes_silently(self, lenet_lut_gpgpu):
        validate_lut(lenet_lut_gpgpu)


class TestBrokenLuts:
    def test_missing_measurement_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        del lut.times_ms["layer1"]["prim0"]
        assert any("no measurement" in p for p in lut_problems(lut))

    def test_non_positive_time_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        lut.times_ms["layer0"]["prim1"] = 0.0
        assert any("non-positive" in p for p in lut_problems(lut))

    def test_missing_metadata_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        del lut.meta["prim2"]
        assert any("lacks metadata" in p for p in lut_problems(lut))

    def test_empty_candidates_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        lut.candidates["layer2"] = []
        assert any("no candidates" in p for p in lut_problems(lut))

    def test_unknown_edge_layer_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        lut.edges.append(("ghost", "layer1"))
        assert any("unknown layers" in p for p in lut_problems(lut))

    def test_missing_transfer_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)  # has GPU primitives
        del lut.transfer_ms[("layer0", "layer1")]
        assert any("lacks a transfer" in p for p in lut_problems(lut))

    def test_missing_conversion_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        del lut.conversion_ms[("layer1", "layer2")]
        assert any("lacks conversion" in p for p in lut_problems(lut))

    def test_negative_penalty_detected(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        lut.transfer_ms[("layer0", "layer1")] = -1.0
        assert any("negative transfer" in p for p in lut_problems(lut))

    def test_validate_raises_with_summary(self):
        lut = synthetic_chain_lut(4, 3, seed=1)
        del lut.times_ms["layer1"]["prim0"]
        with pytest.raises(ProfilingError, match="no measurement"):
            validate_lut(lut)

    def test_many_problems_are_truncated(self):
        lut = synthetic_chain_lut(6, 4, seed=1)
        lut.times_ms = {l: {} for l in lut.layers}  # everything missing
        with pytest.raises(ProfilingError, match="more"):
            validate_lut(lut)


class TestScheduleJsonRoundtrip:
    def test_roundtrip(self):
        from repro.engine.schedule import NetworkSchedule

        sched = NetworkSchedule("net", {"a": "prim0", "b": "prim1"})
        clone = NetworkSchedule.from_json(sched.to_json())
        assert clone.graph_name == "net"
        assert clone.assignments == sched.assignments

    def test_malformed_json_raises(self):
        from repro.engine.schedule import NetworkSchedule
        from repro.errors import ScheduleError

        with pytest.raises(ScheduleError):
            NetworkSchedule.from_json("{not json")
        with pytest.raises(ScheduleError):
            NetworkSchedule.from_json('{"missing": "keys"}')
