"""Tests for the QS-DNN search engine (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import EpsilonSchedule, QSDNNSearch, SearchConfig
from repro.core.state import SearchState, describe_assignments
from repro.baselines import brute_force, chain_dp
from repro.errors import ConfigError

from tests.helpers import synthetic_chain_lut, trap_lut


class TestSearchConfig:
    def test_paper_defaults(self):
        cfg = SearchConfig()
        assert cfg.learning_rate == 0.05
        assert cfg.discount == 0.9
        assert cfg.replay_capacity == 128
        assert cfg.reward_shaping is True
        assert cfg.episodes == 1000

    def test_default_epsilon_is_paper_schedule(self):
        cfg = SearchConfig(episodes=1000)
        assert cfg.epsilon.epsilon_for(0) == 1.0
        assert cfg.epsilon.epsilon_for(999) == 0.0

    def test_mismatched_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            SearchConfig(episodes=100, epsilon=EpsilonSchedule.constant(0.5, 50))

    @pytest.mark.parametrize("field,value", [
        ("episodes", 0),
        ("learning_rate", 0.0),
        ("learning_rate", 1.5),
        ("discount", -0.1),
        ("replay_capacity", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            SearchConfig(**{field: value})


class TestConvergence:
    def test_finds_optimum_on_small_synthetic(self):
        lut = synthetic_chain_lut(5, 4, seed=1)
        optimal = brute_force(lut)
        result = QSDNNSearch(lut, SearchConfig(episodes=600, seed=0)).run()
        assert result.best_ms == pytest.approx(optimal.best_ms, rel=1e-9)

    def test_matches_dp_on_larger_chain(self):
        lut = synthetic_chain_lut(20, 6, seed=2)
        optimal = chain_dp(lut)
        result = QSDNNSearch(lut, SearchConfig(episodes=1500, seed=0)).run()
        assert result.best_ms <= optimal.best_ms * 1.05

    def test_avoids_fig1_trap(self):
        """The paper's Fig. 1: the greedy path is a local minimum."""
        lut = trap_lut()
        result = QSDNNSearch(lut, SearchConfig(episodes=200, seed=0)).run()
        assert result.best_assignments == {
            "l0": "prim0", "l1": "prim0", "l2": "prim0"
        }
        assert result.best_ms == pytest.approx(10.0)

    def test_greedy_policy_converges_to_best(self):
        lut = synthetic_chain_lut(5, 4, seed=3)
        result = QSDNNSearch(lut, SearchConfig(episodes=800, seed=0)).run()
        assert result.greedy_ms == pytest.approx(result.best_ms, rel=0.05)

    def test_learning_curve_trends_down(self):
        lut = synthetic_chain_lut(12, 6, seed=4)
        result = QSDNNSearch(lut, SearchConfig(episodes=1000, seed=0)).run()
        explore = result.curve_ms[:500]
        exploit = result.curve_ms[-50:]
        assert sum(exploit) / 50 < sum(explore) / 500

    def test_best_curve_monotone(self):
        lut = synthetic_chain_lut(8, 4, seed=5)
        result = QSDNNSearch(lut, SearchConfig(episodes=300, seed=0)).run()
        curve = result.best_curve
        assert all(a >= b for a, b in zip(curve, curve[1:]))


class TestDeterminism:
    def test_same_seed_same_result(self):
        lut = synthetic_chain_lut(8, 4, seed=6)
        a = QSDNNSearch(lut, SearchConfig(episodes=200, seed=11)).run()
        b = QSDNNSearch(lut, SearchConfig(episodes=200, seed=11)).run()
        assert a.best_ms == b.best_ms
        assert a.curve_ms == b.curve_ms
        assert a.best_assignments == b.best_assignments

    def test_different_seeds_explore_differently(self):
        lut = synthetic_chain_lut(8, 4, seed=6)
        a = QSDNNSearch(lut, SearchConfig(episodes=200, seed=1)).run()
        b = QSDNNSearch(lut, SearchConfig(episodes=200, seed=2)).run()
        assert a.curve_ms != b.curve_ms


class TestResult:
    def test_result_metadata(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        result = QSDNNSearch(lut, SearchConfig(episodes=100, seed=0)).run()
        assert result.method == "qs-dnn"
        assert result.episodes == 100
        assert len(result.curve_ms) == 100
        assert len(result.epsilon_trace) == 100
        assert result.wall_clock_s > 0

    def test_schedule_roundtrip(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        result = QSDNNSearch(lut, SearchConfig(episodes=100, seed=0)).run()
        sched = result.schedule()
        assert lut.schedule_time(sched.assignments) == pytest.approx(result.best_ms)

    def test_summary_mentions_method(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        result = QSDNNSearch(lut, SearchConfig(episodes=50, seed=0)).run()
        assert "qs-dnn" in result.summary()

    def test_track_curve_off(self):
        lut = synthetic_chain_lut(5, 3, seed=7)
        result = QSDNNSearch(
            lut, SearchConfig(episodes=50, seed=0, track_curve=False)
        ).run()
        assert result.curve_ms == []


class TestAblations:
    def test_reward_shaping_off_still_learns(self):
        lut = synthetic_chain_lut(6, 4, seed=8)
        optimal = chain_dp(lut).best_ms
        cfg = SearchConfig(episodes=800, seed=0, reward_shaping=False)
        result = QSDNNSearch(lut, cfg).run()
        assert result.best_ms <= optimal * 1.3

    def test_shaping_beats_no_shaping_on_average(self):
        """The paper adopted shaping 'for better convergence' (§IV-C)."""
        wins = 0
        for seed in range(6):
            lut = synthetic_chain_lut(15, 6, seed=100 + seed)
            shaped = QSDNNSearch(
                lut, SearchConfig(episodes=300, seed=seed)
            ).run()
            flat = QSDNNSearch(
                lut,
                SearchConfig(episodes=300, seed=seed, reward_shaping=False),
            ).run()
            if shaped.greedy_ms <= flat.greedy_ms:
                wins += 1
        assert wins >= 4

    def test_replay_off_runs(self):
        lut = synthetic_chain_lut(6, 4, seed=9)
        cfg = SearchConfig(episodes=200, seed=0, replay_enabled=False)
        result = QSDNNSearch(lut, cfg).run()
        assert result.best_ms > 0


class TestSearchState:
    def test_from_meta(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        meta = lut.meta["blas.gemm.im2col@openblas"]
        state = SearchState.from_meta("conv", 0, meta)
        assert state.library == "blas"
        assert state.blas == "openblas"
        assert state.processor == "cpu"
        assert "openblas" in str(state)

    def test_describe_assignments(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        assignments = {l: lut.candidates[l][0] for l in lut.layers}
        states = describe_assignments(lut, assignments, {})
        assert len(states) == len(lut.layers)
        assert [s.layer_depth for s in states] == list(range(len(lut.layers)))
