"""Integration tests: the full two-phase pipeline and the paper's
qualitative claims on small networks (the full-size claims live in the
benchmark harnesses)."""

from __future__ import annotations

import pytest

from repro import (
    InferenceEngineOptimizer,
    Mode,
    QSDNNSearch,
    SearchConfig,
    build_network,
    jetson_tx2,
)
from repro.baselines import (
    best_single_library,
    chain_dp,
    greedy_per_layer,
    pbqp_solve,
    random_search,
)
from repro.hw.presets import raspberry_pi3
from repro.hw.processor import ProcessorKind


class TestTwoPhasePipeline:
    def test_full_flow_lenet(self):
        platform = jetson_tx2()
        graph = build_network("lenet5")
        optimizer = InferenceEngineOptimizer(graph, platform, mode=Mode.GPGPU, seed=0)
        lut = optimizer.profile()
        result = QSDNNSearch(lut, SearchConfig(episodes=400, seed=0)).run()
        report = optimizer.deploy(result.schedule())
        # Deployment (fresh measurements) agrees with the LUT objective.
        assert report.total_ms == pytest.approx(result.best_ms, rel=0.1)

    def test_search_runs_without_platform_access(self, lenet_lut_gpgpu):
        """Phase separation: the search needs only the (serialized) LUT."""
        from repro.engine.lut import LatencyTable

        clone = LatencyTable.from_json(lenet_lut_gpgpu.to_json())
        result = QSDNNSearch(clone, SearchConfig(episodes=200, seed=0)).run()
        assert result.best_ms > 0

    def test_cpu_only_platform_end_to_end(self):
        platform = raspberry_pi3()
        graph = build_network("lenet5")
        optimizer = InferenceEngineOptimizer(graph, platform, mode=Mode.CPU, seed=0)
        lut = optimizer.profile()
        result = QSDNNSearch(lut, SearchConfig(episodes=200, seed=0)).run()
        assert result.best_ms > 0
        procs = {lut.meta[u].processor for u in result.best_assignments.values()}
        assert procs == {ProcessorKind.CPU}


class TestPaperClaimsSmall:
    """Fast versions of §VI claims (LeNet/toy scale)."""

    def test_lenet_gpgpu_optimum_is_pure_cpu(self, lenet_lut_gpgpu):
        """§VI-A: 'the fastest implementation for Lenet-5 in GPGPU mode
        is actually a pure CPU implementation'."""
        optimum = chain_dp(lenet_lut_gpgpu)
        procs = {
            lenet_lut_gpgpu.meta[u].processor
            for u in optimum.best_assignments.values()
        }
        assert procs == {ProcessorKind.CPU}

    def test_qsdnn_beats_bsl_lenet(self, lenet_lut_gpgpu):
        rl = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=400, seed=0)
        ).run()
        bsl = best_single_library(lenet_lut_gpgpu)
        assert rl.best_ms < bsl.total_ms

    def test_qsdnn_matches_exact_optimum_lenet(self, lenet_lut_gpgpu):
        rl = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=600, seed=0)
        ).run()
        exact = chain_dp(lenet_lut_gpgpu)
        assert rl.best_ms <= exact.best_ms * 1.02

    def test_qsdnn_beats_rs_at_equal_budget(self, lenet_lut_gpgpu):
        rl = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=300, seed=1)
        ).run()
        rs = random_search(lenet_lut_gpgpu, episodes=300, seed=1)
        assert rl.best_ms <= rs.best_ms

    def test_toy_qsdnn_equals_brute_force(self, toy_lut_gpgpu):
        from repro.baselines import brute_force

        rl = QSDNNSearch(toy_lut_gpgpu, SearchConfig(episodes=400, seed=0)).run()
        exact = brute_force(toy_lut_gpgpu)
        assert rl.best_ms == pytest.approx(exact.best_ms, rel=1e-6)

    def test_greedy_no_better_than_qsdnn(self, lenet_lut_gpgpu):
        rl = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=600, seed=0)
        ).run()
        greedy = greedy_per_layer(lenet_lut_gpgpu)
        assert rl.best_ms <= greedy.best_ms + 1e-9

    def test_pbqp_and_qsdnn_agree_on_lenet(self, lenet_lut_gpgpu):
        rl = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=600, seed=0)
        ).run()
        pb = pbqp_solve(lenet_lut_gpgpu)
        assert rl.best_ms == pytest.approx(pb.best_ms, rel=0.02)


class TestAlexNetFCStory:
    """§VI-A: cuDNN lacks FC, so QS-DNN routes FC through cuBLAS."""

    @pytest.fixture(scope="class")
    def alexnet_lut(self):
        platform = jetson_tx2()
        graph = build_network("alexnet")
        return InferenceEngineOptimizer(
            graph, platform, mode=Mode.GPGPU, seed=0
        ).profile()

    def test_qsdnn_routes_fc_through_cublas(self, alexnet_lut):
        optimum = chain_dp(alexnet_lut)
        for fc in ("fc6", "fc7", "fc8"):
            assert optimum.best_assignments[fc] == "cublas.gemv.sgemv"

    def test_qsdnn_much_faster_than_cudnn_alone(self, alexnet_lut):
        from repro.baselines.best_single_library import single_library_schedule

        cudnn_only = single_library_schedule(alexnet_lut, "cudnn")
        optimum = chain_dp(alexnet_lut)
        assert cudnn_only.total_ms / optimum.best_ms > 3.0

    def test_convs_stay_on_gpu(self, alexnet_lut):
        optimum = chain_dp(alexnet_lut)
        for conv in ("conv2", "conv3", "conv4", "conv5"):
            meta = alexnet_lut.meta[optimum.best_assignments[conv]]
            assert meta.processor is ProcessorKind.GPU


class TestCrossPlatform:
    def test_different_platforms_different_schedules(self):
        """Portability: the same network tunes differently per platform."""
        graph_name = "lenet5"
        results = {}
        for platform in (jetson_tx2(), raspberry_pi3()):
            graph = build_network(graph_name)
            opt = InferenceEngineOptimizer(graph, platform, mode=Mode.CPU, seed=0)
            lut = opt.profile()
            results[platform.name] = chain_dp(lut).best_ms
        # The Pi is strictly slower end-to-end.
        assert results["raspberry_pi3"] > results["jetson_tx2"]
