"""The lockstep multi-seed runner: exactness is the contract.

Every fast path (vectorized, fused-replay, sequential fallback) must
reproduce the per-seed results of independent single-seed
:class:`QSDNNSearch` runs bit-for-bit — ``best_ms``, the whole episode
curve, the final greedy policy.  The Hypothesis test sweeps synthetic
landscapes, seed sets and config variants; the fixture-based tests pin
real profiled LUTs (including a branchy network).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MultiSeedSearch,
    QSDNNSearch,
    SearchConfig,
    seed_range,
)
from repro.errors import ConfigError
from tests.helpers import synthetic_chain_lut


def _assert_members_match_singles(lut, config, seeds):
    sweep = MultiSeedSearch(lut, config, seeds=seeds).run()
    assert len(sweep.results) == len(seeds)
    for seed, member in zip(seeds, sweep.results):
        single_cfg = SearchConfig(
            episodes=config.episodes,
            replay_enabled=config.replay_enabled,
            reward_shaping=config.reward_shaping,
            first_visit_bootstrap=config.first_visit_bootstrap,
            polish_sweeps=config.polish_sweeps,
            track_curve=config.track_curve,
            seed=seed,
        )
        single = QSDNNSearch(lut, single_cfg).run()
        assert member.best_ms == single.best_ms
        assert member.curve_ms == single.curve_ms
        assert member.epsilon_trace == single.epsilon_trace
        assert member.best_assignments == single.best_assignments
        assert member.greedy_ms == single.greedy_ms
        assert member.config.seed == seed
    return sweep


class TestExactnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_independent_runs(self, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 8), label="layers"),
            data.draw(st.integers(2, 6), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        base = data.draw(st.integers(0, 500), label="base_seed")
        count = data.draw(st.integers(1, 4), label="seed_count")
        config = SearchConfig(
            # >= 20 exercises the full paper schedule (explore, decay,
            # exploit); smaller budgets use the constant-1.0 schedule.
            episodes=data.draw(st.sampled_from([12, 40, 90]), label="episodes"),
            replay_enabled=data.draw(st.booleans(), label="replay"),
            reward_shaping=data.draw(st.booleans(), label="shaping"),
            polish_sweeps=data.draw(st.sampled_from([0, 2]), label="polish"),
        )
        _assert_members_match_singles(lut, config, seed_range(base, count))


class TestExactnessOnRealLuts:
    def test_lenet_gpgpu_both_paths(self, lenet_lut_gpgpu):
        for replay in (True, False):
            _assert_members_match_singles(
                lenet_lut_gpgpu,
                SearchConfig(episodes=150, replay_enabled=replay),
                seed_range(0, 3),
            )

    def test_branchy_network(self, squeezenet_lut_gpgpu):
        _assert_members_match_singles(
            squeezenet_lut_gpgpu,
            SearchConfig(episodes=80, replay_enabled=False),
            seed_range(0, 2),
        )

    def test_first_visit_bootstrap_runs_lockstep(self, toy_lut_gpgpu):
        """The episode kernels carry visit bookkeeping natively, so
        first-visit configs lockstep too (one pricing per episode)."""
        config = SearchConfig(episodes=60, first_visit_bootstrap=True)
        sweep = _assert_members_match_singles(
            toy_lut_gpgpu, config, seed_range(0, 2)
        )
        assert sweep.lockstep
        assert sweep.batched_pricings == 60


class TestRunnerSurface:
    def test_one_batched_pricing_per_episode(self, toy_lut_gpgpu):
        config = SearchConfig(episodes=45, replay_enabled=False)
        sweep = MultiSeedSearch(toy_lut_gpgpu, config, seeds=seed_range(0, 4)).run()
        assert sweep.lockstep
        assert sweep.batched_pricings == 45

    def test_result_surface(self, toy_lut_gpgpu):
        config = SearchConfig(episodes=45)
        sweep = MultiSeedSearch(toy_lut_gpgpu, config, seeds=[7, 3, 11]).run()
        assert sweep.seeds == [7, 3, 11]
        assert sweep.best.best_ms == min(sweep.best_ms_per_seed)
        assert "multi-seed qs-dnn" in sweep.summary()
        assert sweep.wall_clock_s >= 0.0
        per_seed = sum(r.wall_clock_s for r in sweep.results)
        assert per_seed == pytest.approx(sweep.wall_clock_s)

    def test_duplicate_seeds_are_identical_runs(self, toy_lut_gpgpu):
        sweep = MultiSeedSearch(
            toy_lut_gpgpu, SearchConfig(episodes=45), seeds=[5, 5]
        ).run()
        a, b = sweep.results
        assert a.best_ms == b.best_ms
        assert a.curve_ms == b.curve_ms

    def test_rejects_empty_seed_list(self, toy_lut_gpgpu):
        with pytest.raises(ConfigError):
            MultiSeedSearch(toy_lut_gpgpu, SearchConfig(episodes=45), seeds=[])

    def test_seed_range_validation(self):
        assert seed_range(3, 2) == [3, 4]
        with pytest.raises(ConfigError):
            seed_range(0, 0)


class TestBatchedLayerCosts:
    """The engine contract the lockstep loop relies on."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_layer_costs_batch_matches_singles_bitwise(self, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 9), label="layers"),
            data.draw(st.integers(1, 6), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        engine = lut.engine()
        rng = np.random.default_rng(data.draw(st.integers(0, 999)))
        batch = engine.sample_batch(rng, data.draw(st.integers(1, 12)))
        costs = engine.layer_costs_batch(batch)
        totals = costs.sum(axis=1)
        for k in range(len(batch)):
            single = engine.layer_costs(batch[k])
            assert (costs[k] == single).all()
            assert totals[k] == float(single.sum())
