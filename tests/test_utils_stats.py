"""Unit tests for statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.utils.stats import geometric_mean, mean_and_ci, running_min


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / len(values)


class TestMeanAndCi:
    def test_mean(self):
        mean, _ = mean_and_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)

    def test_single_sample_zero_halfwidth(self):
        _, ci = mean_and_ci([5.0])
        assert ci == 0.0

    def test_halfwidth_scales_with_spread(self):
        _, narrow = mean_and_ci([1.0, 1.1, 0.9])
        _, wide = mean_and_ci([1.0, 2.0, 0.0])
        assert wide > narrow

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_ci([])

    def test_known_value(self):
        # Two samples 0 and 2: mean 1, sample sd sqrt(2), se 1.
        mean, ci = mean_and_ci([0.0, 2.0], z=1.0)
        assert mean == pytest.approx(1.0)
        assert ci == pytest.approx(1.0)


class TestRunningMin:
    def test_monotone_non_increasing(self):
        curve = running_min([5.0, 7.0, 3.0, 4.0, 1.0])
        assert curve == [5.0, 5.0, 3.0, 3.0, 1.0]

    def test_empty(self):
        assert running_min([]) == []

    def test_never_above_input(self):
        values = [3.0, 1.0, 2.0]
        for v, m in zip(values, running_min(values)):
            assert m <= v

    def test_handles_inf(self):
        assert running_min([math.inf, 2.0]) == [math.inf, 2.0]
