"""Unit tests for FLOP/byte accounting — checked against hand counts."""

from __future__ import annotations

import pytest

from repro.nn.builder import NetworkBuilder
from repro.nn.flops import (
    layer_arithmetic_intensity,
    layer_flops,
    layer_io_bytes,
    layer_weight_bytes,
)
from repro.nn.tensor import TensorShape


@pytest.fixture()
def net():
    b = NetworkBuilder("flops", TensorShape(3, 8, 8))
    b.conv("conv", out_channels=4, kernel=3, padding=1)       # 4 x 8 x 8
    b.depthwise("dw", kernel=3, padding=1)                    # 4 x 8 x 8
    b.batch_norm("bn")
    b.relu("relu")
    b.pool_max("pool", kernel=2)                              # 4 x 4 x 4
    b.fc("fc", out_channels=10)
    b.softmax("sm")
    return b.build()


class TestFlops:
    def test_conv(self, net):
        # 2 * k*k * cin * out_numel = 2*9*3*256
        assert layer_flops(net.layer("conv"), net) == 2 * 9 * 3 * 4 * 64

    def test_depthwise(self, net):
        # 2 * k*k * out_numel
        assert layer_flops(net.layer("dw"), net) == 2 * 9 * 4 * 64

    def test_fc(self, net):
        # 2 * in * out = 2 * 64 * 10
        assert layer_flops(net.layer("fc"), net) == 2 * 64 * 10

    def test_pool(self, net):
        assert layer_flops(net.layer("pool"), net) == 4 * 4 * 16

    def test_relu(self, net):
        assert layer_flops(net.layer("relu"), net) == 4 * 64

    def test_batch_norm(self, net):
        assert layer_flops(net.layer("bn"), net) == 2 * 4 * 64

    def test_softmax(self, net):
        assert layer_flops(net.layer("sm"), net) == 4 * 10


class TestWeights:
    def test_conv_weights(self, net):
        # (k*k*cin*cout + bias) * 4 bytes
        assert layer_weight_bytes(net.layer("conv"), net) == (9 * 3 * 4 + 4) * 4

    def test_depthwise_weights(self, net):
        assert layer_weight_bytes(net.layer("dw"), net) == (9 * 4 + 4) * 4

    def test_fc_weights(self, net):
        assert layer_weight_bytes(net.layer("fc"), net) == (64 * 10 + 10) * 4

    def test_bn_weights(self, net):
        assert layer_weight_bytes(net.layer("bn"), net) == 2 * 4 * 4

    def test_relu_no_weights(self, net):
        assert layer_weight_bytes(net.layer("relu"), net) == 0


class TestIO:
    def test_relu_io(self, net):
        # read 4x8x8, write 4x8x8, fp32.
        assert layer_io_bytes(net.layer("relu"), net) == 2 * 4 * 64 * 4

    def test_pool_io(self, net):
        assert layer_io_bytes(net.layer("pool"), net) == (4 * 64 + 4 * 16) * 4

    def test_intensity_positive(self, net):
        for layer in net.layers():
            assert layer_arithmetic_intensity(layer, net) >= 0
