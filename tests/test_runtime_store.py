"""The persistent result store: keys, codecs, queries, persistence."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.runtime.campaign import CampaignJob, execute_job
from repro.runtime.store import (
    ResultStore,
    best_ms_of,
    decode_payload,
    encode_payload,
    job_key,
)

EPISODES = 120


def _search_result(episodes=EPISODES, seed=0):
    job = CampaignJob(
        network="fig1_toy", mode="gpgpu", episodes=episodes, seed=seed,
        kind="search",
    )
    return job, execute_job(job).payload


class TestJobKey:
    def test_every_field_participates(self):
        base = CampaignJob(network="fig1_toy", mode="cpu", episodes=100)
        variants = [
            CampaignJob(network="lenet5", mode="cpu", episodes=100),
            CampaignJob(network="fig1_toy", mode="gpgpu", episodes=100),
            CampaignJob(network="fig1_toy", mode="cpu", episodes=200),
            CampaignJob(network="fig1_toy", mode="cpu", episodes=None),
            CampaignJob(network="fig1_toy", mode="cpu", episodes=100, seed=1),
            CampaignJob(
                network="fig1_toy", mode="cpu", episodes=100, kind="search"
            ),
            CampaignJob(
                network="fig1_toy", mode="cpu", episodes=100, kernel="reference"
            ),
            CampaignJob(network="fig1_toy", mode="cpu", episodes=100, repeats=10),
            CampaignJob(network="fig1_toy", mode="cpu", episodes=100, seeds=3),
        ]
        keys = {job_key(base)} | {job_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_auto_budget_keys_as_auto(self):
        job = CampaignJob(network="fig1_toy", mode="cpu")
        assert "/epauto/" in job_key(job)


class TestCodecs:
    def test_search_result_roundtrip_is_bitwise(self):
        _, payload = _search_result()
        kind, text = encode_payload(payload)
        back = decode_payload(kind, text)
        assert kind == "search_result"
        assert back.best_ms == payload.best_ms  # bitwise
        assert back.curve_ms == payload.curve_ms
        assert back.greedy_ms == payload.greedy_ms
        assert back.best_assignments == payload.best_assignments
        assert back.kernel_backend == payload.kernel_backend
        assert back.config is not None and back.config.seed == 0

    def test_multi_seed_roundtrip(self):
        job = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES,
            kind="multi-seed", seeds=2,
        )
        payload = execute_job(job).payload
        kind, text = encode_payload(payload)
        back = decode_payload(kind, text)
        assert back.seeds == payload.seeds
        assert back.best_ms_per_seed == payload.best_ms_per_seed
        assert back.lockstep == payload.lockstep

    def test_table2_and_compare_roundtrip(self):
        for job_kind in ("table2", "compare"):
            job = CampaignJob(
                network="fig1_toy", mode="gpgpu", episodes=EPISODES,
                kind=job_kind,
            )
            payload = execute_job(job).payload
            kind, text = encode_payload(payload)
            back = decode_payload(kind, text)
            assert back == payload  # flat float dataclasses compare exactly

    def test_unknown_payload_rejected(self):
        with pytest.raises(ConfigError):
            encode_payload(object())
        with pytest.raises(ConfigError):
            decode_payload("wat", "{}")

    def test_best_ms_of(self):
        job, payload = _search_result()
        assert best_ms_of(payload) == payload.best_ms
        table2 = execute_job(
            CampaignJob(network="fig1_toy", mode="gpgpu", episodes=EPISODES)
        ).payload
        assert best_ms_of(table2) == table2.qsdnn_ms
        assert best_ms_of(object()) is None


class TestResultStore:
    def test_put_get_roundtrip(self):
        job, payload = _search_result()
        with ResultStore(":memory:") as store:
            assert store.get(job) is None
            store.put(job, payload, wall_clock_s=1.5)
            hit = store.get(job)
            assert hit is not None
            assert hit.payload.best_ms == payload.best_ms  # bitwise
            assert hit.best_ms == payload.best_ms
            assert hit.wall_clock_s == 1.5
            assert hit.created_s > 0
            assert len(store) == 1

    def test_contains_without_decode(self):
        job, payload = _search_result()
        with ResultStore(":memory:") as store:
            assert not store.contains(job)
            store.put(job, payload)
            assert store.contains(job)

    def test_distinct_scenarios_do_not_alias(self):
        job, payload = _search_result(seed=0)
        other = CampaignJob(
            network="fig1_toy", mode="gpgpu", episodes=EPISODES, seed=1,
            kind="search",
        )
        with ResultStore(":memory:") as store:
            store.put(job, payload)
            assert store.get(other) is None

    def test_put_replaces(self):
        job, payload = _search_result()
        with ResultStore(":memory:") as store:
            store.put(job, payload, wall_clock_s=1.0)
            store.put(job, payload, wall_clock_s=2.0)
            assert len(store) == 1
            assert store.get(job).wall_clock_s == 2.0

    def test_delete(self):
        job, payload = _search_result()
        with ResultStore(":memory:") as store:
            store.put(job, payload)
            assert store.delete(job)
            assert not store.delete(job)
            assert store.get(job) is None

    def test_query_filters(self):
        job, payload = _search_result(seed=0)
        job2, payload2 = _search_result(seed=1)
        with ResultStore(":memory:") as store:
            store.put(job, payload)
            store.put(job2, payload2)
            assert len(store.query()) == 2
            assert len(store.query(seed=1)) == 1
            assert store.query(seed=1)[0].job == job2
            assert store.query(network="lenet5") == []
            assert len(store.query(network="fig1_toy", mode="gpgpu")) == 2
            # Round-trips reconstruct the exact job (keys included).
            assert {job_key(r.job) for r in store.query()} == {
                job_key(job), job_key(job2)
            }

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "store" / "results.sqlite"
        job, payload = _search_result()
        with ResultStore(path) as store:
            store.put(job, payload)
        with ResultStore(path) as store:
            hit = store.get(job)
            assert hit is not None
            assert hit.payload.best_ms == payload.best_ms
            assert hit.payload.curve_ms == payload.curve_ms


class TestWalAndGroupCommit:
    """The write-coalescing data plane: WAL mode, batched inserts and
    the optional group-commit buffer."""

    def test_wal_pragma_active_on_file_backed_store(self, tmp_path):
        with ResultStore(tmp_path / "wal.sqlite") as store:
            assert store.wal is True
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() == "wal"
            sync = store._conn.execute("PRAGMA synchronous").fetchone()[0]
            assert sync == 1  # NORMAL

    def test_wal_opt_out_keeps_rollback_journal(self, tmp_path):
        with ResultStore(tmp_path / "legacy.sqlite", wal=False) as store:
            assert store.wal is False
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() != "wal"

    def test_memory_store_never_claims_wal(self):
        # sqlite cannot WAL a :memory: database; the flag must not lie.
        with ResultStore(":memory:", wal=True) as store:
            assert store.wal is False

    def test_put_many_is_bitwise_equal_to_repeated_put(self, tmp_path):
        items = [_search_result(seed=seed) for seed in range(4)]
        with ResultStore(tmp_path / "many.sqlite") as batched, ResultStore(
            tmp_path / "single.sqlite"
        ) as serial:
            keys, flush_s = batched.put_many(
                [(job, payload, 0.25) for job, payload in items]
            )
            assert flush_s >= 0.0  # this commit's own latency
            for job, payload in items:
                serial.put(job, payload, wall_clock_s=0.25)
            assert keys == [job_key(job) for job, _ in items]  # input order
            for job, _ in items:
                left, right = batched.get(job), serial.get(job)
                assert left.payload.best_ms == right.payload.best_ms
                assert left.payload.curve_ms == right.payload.curve_ms
                assert left.wall_clock_s == right.wall_clock_s
            # The whole batch landed as ONE transaction.
            assert batched.flush_stats["flushes"] == 1
            assert batched.flush_stats["rows"] == len(items)
            assert serial.flush_stats["flushes"] == len(items)

    def test_group_commit_buffers_until_threshold(self):
        store = ResultStore(":memory:", group_commit=3)
        items = [_search_result(seed=seed) for seed in range(3)]
        store.put(*items[0], 0.0)
        store.put(*items[1], 0.0)
        assert store.pending == 2
        assert store.flush_stats["flushes"] == 0
        # Nothing durable yet (raw count — len() would flush first).
        (durable,) = store._conn.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        assert durable == 0
        store.put(*items[2], 0.0)  # hits the threshold
        assert store.pending == 0
        assert store.flush_stats == {
            "flushes": 1,
            "rows": 3,
            "total_s": store.flush_stats["total_s"],
        }
        assert len(store) == 3

    def test_reads_flush_the_buffer_first(self):
        """Buffered rows are never invisible: every read path flushes
        before querying, so read-your-writes holds under group-commit."""
        job, payload = _search_result()
        store = ResultStore(":memory:", group_commit=8)
        store.put(job, payload)
        assert store.pending == 1
        hit = store.get(job)  # the read forces the flush
        assert hit is not None
        assert hit.payload.best_ms == payload.best_ms
        assert store.pending == 0
        assert store.flush_stats["flushes"] == 1
        assert store.flush() == 0  # nothing left to flush

    def test_close_flushes_the_buffer(self, tmp_path):
        path = tmp_path / "flush-on-close.sqlite"
        job, payload = _search_result()
        with ResultStore(path, group_commit=8) as store:
            store.put(job, payload)
            assert store.pending == 1
        with ResultStore(path) as reopened:
            assert reopened.get(job) is not None

    def test_delete_pops_the_buffer_too(self):
        job, payload = _search_result()
        store = ResultStore(":memory:", group_commit=8)
        store.put(job, payload)
        assert store.delete(job) is True
        assert store.pending == 0
        assert store.flush() == 0  # the buffered row is gone for good
        assert store.get(job) is None

    def test_put_many_sweeps_buffered_rows_into_its_commit(self):
        early_job, early_payload = _search_result(seed=7)
        batch = [_search_result(seed=seed) for seed in range(2)]
        store = ResultStore(":memory:", group_commit=16)
        store.put(early_job, early_payload)
        assert store.pending == 1
        store.put_many([(job, payload, 0.0) for job, payload in batch])
        assert store.pending == 0
        assert store.flush_stats["flushes"] == 1
        assert store.flush_stats["rows"] == 3  # one fsync covered all
        assert store.get(early_job) is not None

    def test_last_write_wins_inside_one_buffer(self):
        job, payload = _search_result()
        store = ResultStore(":memory:", group_commit=8)
        store.put(job, payload, wall_clock_s=1.0)
        store.put(job, payload, wall_clock_s=2.0)
        assert store.pending == 1  # same key coalesced
        store.flush()
        assert store.get(job).wall_clock_s == 2.0

    def test_negative_group_commit_rejected(self):
        with pytest.raises(ConfigError):
            ResultStore(":memory:", group_commit=-1)


class TestCheckpointRows:
    """Anytime-search checkpoint persistence: retention and GC."""

    def test_put_get_roundtrip_preserves_text_verbatim(self):
        text = '{"format":1,"episode":40,"best_ms":0.123456789012345678}'
        with ResultStore(":memory:") as store:
            assert store.get_checkpoint("k1") is None
            store.put_checkpoint("k1", text, format=1, episode=40,
                                 best_ms=0.123456789012345678)
            stored = store.get_checkpoint("k1")
            assert stored.text == text  # byte-identical payload
            assert stored.format == 1
            assert stored.episode == 40
            assert stored.best_ms == 0.123456789012345678  # bitwise
            assert stored.updated_s > 0
            assert store.count_checkpoints() == 1

    def test_newer_checkpoint_replaces_older(self):
        with ResultStore(":memory:") as store:
            store.put_checkpoint("k1", "old", format=1, episode=10, best_ms=2.0)
            store.put_checkpoint("k1", "new", format=1, episode=20, best_ms=1.0)
            assert store.count_checkpoints() == 1
            stored = store.get_checkpoint("k1")
            assert stored.text == "new" and stored.episode == 20

    def test_delete_reports_existence(self):
        with ResultStore(":memory:") as store:
            store.put_checkpoint("k1", "x", format=1, episode=5, best_ms=1.0)
            assert store.delete_checkpoint("k1") is True
            assert store.delete_checkpoint("k1") is False
            assert store.get_checkpoint("k1") is None

    def test_gc_drops_only_stale_rows(self):
        with ResultStore(":memory:") as store:
            store.put_checkpoint("old", "x", format=1, episode=5,
                                 best_ms=1.0, now=1000.0)
            store.put_checkpoint("fresh", "y", format=1, episode=5,
                                 best_ms=1.0, now=1900.0)
            assert store.gc_checkpoints(ttl_s=300.0, now=2000.0) == 1
            assert store.get_checkpoint("old") is None
            assert store.get_checkpoint("fresh") is not None

    def test_refresh_resets_the_retention_clock(self):
        with ResultStore(":memory:") as store:
            store.put_checkpoint("k1", "x", format=1, episode=5,
                                 best_ms=1.0, now=1000.0)
            store.put_checkpoint("k1", "y", format=1, episode=10,
                                 best_ms=0.5, now=1900.0)
            assert store.gc_checkpoints(ttl_s=300.0, now=2000.0) == 0
            assert store.get_checkpoint("k1").episode == 10

    def test_checkpoints_never_ride_the_group_commit_buffer(self):
        """A checkpoint's whole point is surviving the crash that
        follows it — it must be durable immediately, even when result
        rows are being coalesced."""
        store = ResultStore(":memory:", group_commit=8)
        store.put_checkpoint("k1", "x", format=1, episode=5, best_ms=1.0)
        assert store.flush_stats["flushes"] == 0  # no result flush forced
        (durable,) = store._conn.execute(
            "SELECT COUNT(*) FROM checkpoints"
        ).fetchone()
        assert durable == 1

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "ckpt.sqlite"
        with ResultStore(path) as store:
            store.put_checkpoint("k1", "x", format=1, episode=5, best_ms=1.0)
        with ResultStore(path) as reopened:
            assert reopened.get_checkpoint("k1").text == "x"
