"""Tests for schedules and the simulated executor."""

from __future__ import annotations

import pytest

from repro.backends import Mode, gpgpu_space
from repro.engine.executor import Executor
from repro.engine.schedule import (
    NetworkSchedule,
    primitive_type_schedule,
    vanilla_schedule,
)
from repro.errors import ScheduleError
from repro.hw import jetson_tx2
from repro.utils.rng import derive_rng
from repro.zoo import build_network


@pytest.fixture(scope="module")
def tx2():
    return jetson_tx2()


@pytest.fixture(scope="module")
def tx2_quiet():
    return jetson_tx2(noise_sigma=0.0)


@pytest.fixture(scope="module")
def lenet():
    return build_network("lenet5")


@pytest.fixture(scope="module")
def space(tx2):
    return gpgpu_space(tx2)


class TestVanillaSchedule:
    def test_assigns_every_layer(self, lenet, space):
        sched = vanilla_schedule(lenet, space)
        assert len(sched) == len(lenet.layers())

    def test_only_vanilla(self, lenet, space):
        sched = vanilla_schedule(lenet, space)
        assert sched.libraries_used(space) == ["vanilla"]

    def test_validates(self, lenet, space):
        vanilla_schedule(lenet, space).validate(lenet, space)


class TestPrimitiveTypeSchedule:
    def test_substitutes_where_supported(self, lenet, space):
        cudnn_conv = space.primitive("cudnn.implicit_gemm.precomp")
        sched = primitive_type_schedule(lenet, space, cudnn_conv)
        assert sched.primitive_uid("conv1") == "cudnn.implicit_gemm.precomp"
        assert sched.primitive_uid("conv2") == "cudnn.implicit_gemm.precomp"
        # FC layers stay Vanilla: cuDNN cannot implement them.
        assert sched.primitive_uid("ip1").startswith("vanilla")

    def test_libraries_used(self, lenet, space):
        prim = space.primitive("nnpack.gemv.inference")
        sched = primitive_type_schedule(lenet, space, prim)
        assert sched.libraries_used(space) == ["nnpack", "vanilla"]


class TestScheduleValidation:
    def test_missing_layer_raises(self, lenet, space):
        sched = NetworkSchedule(lenet.name)
        with pytest.raises(ScheduleError):
            sched.validate(lenet, space)

    def test_wrong_graph_name_raises(self, lenet, space):
        sched = NetworkSchedule("other")
        with pytest.raises(ScheduleError):
            sched.validate(lenet, space)

    def test_unsupported_assignment_raises(self, lenet, space):
        sched = vanilla_schedule(lenet, space)
        sched.assign("ip1", "cudnn.implicit_gemm.precomp")  # FC via cuDNN: no
        with pytest.raises(ScheduleError):
            sched.validate(lenet, space)

    def test_extra_layer_raises(self, lenet, space):
        sched = vanilla_schedule(lenet, space)
        sched.assign("ghost", "vanilla.direct.conv")
        with pytest.raises(ScheduleError):
            sched.validate(lenet, space)

    def test_unknown_layer_lookup_raises(self, lenet):
        with pytest.raises(ScheduleError):
            NetworkSchedule(lenet.name).primitive_uid("conv1")


class TestExecutor:
    def test_noiseless_run_is_deterministic(self, lenet, space, tx2_quiet):
        ex = Executor(lenet, gpgpu_space(tx2_quiet), tx2_quiet)
        sched = vanilla_schedule(lenet, gpgpu_space(tx2_quiet))
        a = ex.run(sched).total_ms
        b = ex.run(sched).total_ms
        assert a == b

    def test_vanilla_run_has_no_penalties(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        result = ex.run(vanilla_schedule(lenet, space))
        assert result.overhead_ms == 0.0

    def test_total_is_compute_plus_overhead(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        prim = space.primitive("cudnn.implicit_gemm.precomp")
        result = ex.run(primitive_type_schedule(lenet, space, prim))
        assert result.total_ms == pytest.approx(
            result.compute_ms + result.overhead_ms
        )

    def test_mixed_processors_pay_transfers(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        prim = space.primitive("cudnn.implicit_gemm.precomp")
        result = ex.run(primitive_type_schedule(lenet, space, prim))
        # conv layers on GPU, rest on CPU: at least two boundary crossings.
        assert result.overhead_ms > 0.0
        assert len(result.penalty_ms) >= 2

    def test_noise_changes_measurements(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        sched = vanilla_schedule(lenet, space)
        a = ex.run(sched, rng=derive_rng(1, "a")).total_ms
        b = ex.run(sched, rng=derive_rng(2, "b")).total_ms
        assert a != b

    def test_same_rng_same_measurement(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        sched = vanilla_schedule(lenet, space)
        a = ex.run(sched, rng=derive_rng(5, "x")).total_ms
        b = ex.run(sched, rng=derive_rng(5, "x")).total_ms
        assert a == b

    def test_repeats_shrink_jitter(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        sched = vanilla_schedule(lenet, space)
        noiseless = ex.run(sched).total_ms
        single = [
            abs(ex.run(sched, rng=derive_rng(i, "s")).total_ms - noiseless)
            for i in range(20)
        ]
        averaged = [
            abs(
                ex.run(sched, rng=derive_rng(i, "m"), repeats=50).total_ms
                - noiseless
            )
            for i in range(20)
        ]
        assert sum(averaged) < sum(single)

    def test_slowest_layers_ranked(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        result = ex.run(vanilla_schedule(lenet, space))
        top = result.slowest_layers(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_true_penalty_zero_for_same_primitive(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        uid = "vanilla.direct.conv"
        assert ex.true_penalty_ms("conv1", "pool1", uid, "vanilla.direct.pool") == 0.0

    def test_true_penalty_transfer_and_conversion(self, lenet, space, tx2):
        ex = Executor(lenet, space, tx2)
        # CPU/NHWC producer -> GPU/NCHW consumer: transfer + conversion.
        both = ex.true_penalty_ms(
            "conv1", "pool1", "armcl.gemm.neon", "cudnn.direct.pool"
        )
        transfer_only = ex.true_penalty_ms(
            "conv1", "pool1", "blas.gemm.im2col@openblas", "cudnn.direct.pool"
        )
        assert both > transfer_only > 0
