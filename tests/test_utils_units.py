"""Unit tests for unit conversions and formatting."""

from __future__ import annotations

import pytest

from repro.utils.units import (
    format_ms,
    format_speedup,
    gflops,
    mbytes,
    ms_to_s,
    s_to_ms,
    us_to_ms,
)


class TestConversions:
    def test_us_to_ms(self):
        assert us_to_ms(1500.0) == 1.5

    def test_ms_to_s(self):
        assert ms_to_s(2500.0) == 2.5

    def test_s_to_ms(self):
        assert s_to_ms(0.25) == 250.0

    def test_s_ms_roundtrip(self):
        assert ms_to_s(s_to_ms(1.234)) == pytest.approx(1.234)

    def test_gflops(self):
        assert gflops(3.2e9) == pytest.approx(3.2)

    def test_mbytes(self):
        assert mbytes(1024 * 1024) == 1.0


class TestFormatMs:
    def test_microseconds(self):
        assert format_ms(0.0123) == "12.3us"

    def test_milliseconds(self):
        assert format_ms(1.5) == "1.50ms"

    def test_seconds(self):
        assert format_ms(2500.0) == "2.50s"

    def test_boundary_tenth_ms(self):
        assert format_ms(0.1).endswith("ms")

    def test_zero(self):
        assert format_ms(0.0) == "0.0us"


class TestFormatSpeedup:
    def test_small(self):
        assert format_speedup(1.234) == "1.23x"

    def test_medium(self):
        assert format_speedup(45.2) == "45.2x"

    def test_large(self):
        assert format_speedup(461.5) == "462x"
