#!/usr/bin/env python
"""Fail CI when the search benchmark regresses against the committed baseline.

Compares the freshly generated ``BENCH_search.json`` against the
baseline committed in the repository (snapshotted before the bench
runs) and exits non-zero if any ``search_wall_clock_s`` entry got more
than ``--threshold`` times slower, or any ``multi_seed`` amortization
``ratio`` grew by more than the same factor.  Entries measured below
``--min-seconds`` on both sides are ignored (for ratios: the
underlying multi-seed wall clocks): at sub-50ms scales shared CI
runners produce ratios that say more about the neighbor's workload
than about this commit.

Usage (mirrors the CI step)::

    python scripts/check_bench_regression.py \
        --baseline BENCH_baseline.json --current BENCH_search.json

Dry-run the gate locally by injecting a slowdown into a copy of the
artifact (doubling every wall clock must exit 1)::

    python scripts/check_bench_regression.py \
        --baseline BENCH_search.json --current /tmp/slowed.json

Service data-plane artifacts (``BENCH_service.json``, carrying
``"kind": "service_throughput"``) are detected automatically and gated
on per-mode ``jobs_per_s`` instead of wall clocks, plus a hard floor
on the batched-over-legacy fleet speedup (``--min-speedup``)::

    python scripts/check_bench_regression.py \
        --baseline BENCH_service_baseline.json \
        --current BENCH_service.json --min-speedup 2.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 1.5
DEFAULT_MIN_SECONDS = 0.05
#: Hard floor on the batched-over-legacy fleet speedup of a service
#: artifact — the tentpole claim the data plane must keep proving.
#: Deliberately below the committed artifact's margin: this gate
#: catches "the batching stopped working", not CI-runner noise.
DEFAULT_MIN_SPEEDUP = 2.0


def load_payload(path: Path) -> dict:
    """One bench artifact, parsed."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read bench artifact {path}: {error}")


def wall_clocks_of(payload: dict, path: Path) -> dict[str, float]:
    """The ``search_wall_clock_s`` mapping of one bench artifact."""
    clocks = payload.get("search_wall_clock_s")
    if not isinstance(clocks, dict) or not clocks:
        raise SystemExit(f"{path} has no search_wall_clock_s entries")
    return {str(key): float(value) for key, value in clocks.items()}


def load_wall_clocks(path: Path) -> dict[str, float]:
    """The ``search_wall_clock_s`` mapping, straight from disk."""
    return wall_clocks_of(load_payload(path), path)


def backend_of(payload: dict) -> str:
    """The kernel backend an artifact was measured with ("reference"
    for pre-kernel schemas, which had no other backend)."""
    kernel = payload.get("kernel")
    if isinstance(kernel, dict):
        return str(kernel.get("backend", "reference"))
    return "reference"


def ratio_section_of(payload: dict, section: str) -> dict[str, dict[str, float]]:
    """One ratio-bearing section (``multi_seed`` or ``mega_batch``);
    empty when the artifact lacks it — older schemas or partial runs
    are not gated on ratios."""
    entries = payload.get(section)
    if not isinstance(entries, dict):
        return {}
    return {
        str(network): entry
        for network, entry in entries.items()
        if isinstance(entry, dict) and "ratio" in entry
    }


def multi_seed_of(payload: dict) -> dict[str, dict[str, float]]:
    """The ``multi_seed`` entries (back-compat spelling)."""
    return ratio_section_of(payload, "multi_seed")


def check(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
    min_seconds: float,
) -> list[str]:
    """Human-readable regression lines (empty means the gate passes)."""
    failures = []
    for network in sorted(set(baseline) & set(current)):
        base = baseline[network]
        now = current[network]
        if base < min_seconds and now < min_seconds:
            continue
        ratio = now / base if base > 0 else float("inf")
        if ratio > threshold:
            detail = f"{base:.3f}s -> {now:.3f}s ({ratio:.2f}x > {threshold}x)"
            failures.append(f"{network}: {detail}")
    return failures


def check_ratios(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    threshold: float,
    min_seconds: float,
    section: str = "multi_seed",
) -> list[str]:
    """Regression lines for one section's amortization ratios
    (``multi_seed`` K=8 lockstep, ``mega_batch`` K=1000 SoA).

    A ratio entry is skipped under the same noise floor as the wall
    clocks, judged on the batch wall clocks behind the ratio.
    """
    failures = []
    for network in sorted(set(baseline) & set(current)):
        base = baseline[network]
        now = current[network]
        base_wall = float(base.get("wall_clock_s", 0.0))
        now_wall = float(now.get("wall_clock_s", 0.0))
        if base_wall < min_seconds and now_wall < min_seconds:
            continue
        base_ratio = float(base["ratio"])
        now_ratio = float(now["ratio"])
        growth = now_ratio / base_ratio if base_ratio > 0 else float("inf")
        if growth > threshold:
            detail = (
                f"ratio {base_ratio:.2f}x -> {now_ratio:.2f}x "
                f"({growth:.2f}x > {threshold}x)"
            )
            failures.append(f"{network} [{section}]: {detail}")
    return failures


def jobs_per_s_of(payload: dict, path: Path) -> dict[str, float]:
    """Per-mode ``jobs_per_s`` of one service-throughput artifact."""
    modes = payload.get("modes")
    if not isinstance(modes, dict) or not modes:
        raise SystemExit(f"{path} has no service modes to compare")
    clocks = {}
    for name, entry in modes.items():
        if isinstance(entry, dict) and "jobs_per_s" in entry:
            clocks[str(name)] = float(entry["jobs_per_s"])
    if not clocks:
        raise SystemExit(f"{path} has no jobs_per_s entries")
    return clocks


def check_service(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[str]:
    """Regression lines for per-mode service throughput (jobs/s went
    *down* by more than ``threshold``)."""
    failures = []
    for mode in sorted(set(baseline) & set(current)):
        base = baseline[mode]
        now = current[mode]
        slowdown = base / now if now > 0 else float("inf")
        if slowdown > threshold:
            detail = (
                f"{base:.0f} jobs/s -> {now:.0f} jobs/s "
                f"({slowdown:.2f}x slower > {threshold}x)"
            )
            failures.append(f"{mode}: {detail}")
    return failures


def _gate_service(args, base_payload: dict, cur_payload: dict) -> int:
    """The service-throughput arm of the gate (auto-dispatched)."""
    if base_payload.get("kind") != cur_payload.get("kind"):
        print(
            "bench-regression gate FAILED: baseline "
            f"{args.baseline} and current {args.current} are different "
            "artifact kinds"
        )
        return 1
    baseline = jobs_per_s_of(base_payload, args.baseline)
    current = jobs_per_s_of(cur_payload, args.current)
    compared = sorted(set(baseline) & set(current))
    if not compared:
        print("bench-regression gate: no overlapping service modes to compare")
        return 1
    for mode in compared:
        print(
            f"  {mode}: baseline {baseline[mode]:.0f} jobs/s, "
            f"current {current[mode]:.0f} jobs/s"
        )
    failures = check_service(baseline, current, args.threshold)
    speedup = cur_payload.get("speedup", {})
    fleet = float(speedup.get("fleet", 0.0)) if isinstance(speedup, dict) else 0.0
    print(f"  fleet speedup (batched vs legacy): {fleet:.2f}x")
    if fleet < args.min_speedup:
        failures.append(
            f"fleet speedup {fleet:.2f}x below the {args.min_speedup}x floor"
        )
    if failures:
        print("bench-regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"bench-regression gate passed: {len(compared)} service mode(s) "
        f"within {args.threshold}x, fleet speedup >= {args.min_speedup}x"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_baseline.json"),
        help="bench artifact of the previous revision (committed baseline)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_search.json"),
        help="bench artifact of this revision",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fail when current/baseline exceeds this factor",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="skip entries below this wall clock on both sides",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=(
            "service artifacts only: fail when the current batched-fleet "
            "speedup over legacy falls below this factor"
        ),
    )
    args = parser.parse_args(argv)

    # A missing artifact must fail with marching orders, not pass
    # silently (an empty gate run looks exactly like a healthy one in
    # CI logs) and not with a bare stack trace.
    if not args.baseline.exists():
        print(
            f"bench-regression gate FAILED: baseline artifact "
            f"{args.baseline} does not exist.\n"
            "  The committed BENCH_search.json is the baseline; CI "
            "snapshots it before the bench runs.\n"
            "  To (re)create it: PYTHONPATH=src python -m pytest "
            "benchmarks/bench_search_runtime.py -q\n"
            "  then commit the refreshed BENCH_search.json."
        )
        return 1
    if not args.current.exists():
        print(
            f"bench-regression gate FAILED: current artifact "
            f"{args.current} does not exist.\n"
            "  The bench smoke must run first (it always writes the "
            "v3 schema file, even when nothing was measured):\n"
            "  PYTHONPATH=src python -m pytest "
            "benchmarks/bench_search_runtime.py -q -k summary"
        )
        return 1
    base_payload = load_payload(args.baseline)
    cur_payload = load_payload(args.current)
    if "service_throughput" in (
        base_payload.get("kind"),
        cur_payload.get("kind"),
    ):
        return _gate_service(args, base_payload, cur_payload)
    base_backend = backend_of(base_payload)
    cur_backend = backend_of(cur_payload)
    if base_backend != cur_backend:
        # Wall clocks (and the ratios derived from them) are only
        # comparable within one kernel backend; a numba run against a
        # reference baseline would pass vacuously, and the reverse
        # would fail spuriously.  The numba-vs-reference bar lives in
        # the bench itself (kernel speedup >= 5x).
        print(
            "bench-regression gate skipped: baseline measured on "
            f"{base_backend!r} kernels, current on {cur_backend!r} — "
            "not comparable"
        )
        return 0
    baseline = wall_clocks_of(base_payload, args.baseline)
    current = wall_clocks_of(cur_payload, args.current)
    compared = sorted(set(baseline) & set(current))
    if not compared:
        print("bench-regression gate: no overlapping networks to compare")
        return 1
    for network in compared:
        base = baseline[network]
        now = current[network]
        ratio = now / base if base > 0 else float("inf")
        print(f"  {network}: baseline {base:.3f}s, current {now:.3f}s ({ratio:.2f}x)")
    failures = check(baseline, current, args.threshold, args.min_seconds)

    ratio_count = 0
    for section in ("multi_seed", "mega_batch", "warm_start"):
        base_ms = ratio_section_of(base_payload, section)
        cur_ms = ratio_section_of(cur_payload, section)
        overlap = sorted(set(base_ms) & set(cur_ms))
        ratio_count += len(overlap)
        for network in overlap:
            print(
                f"  {network} [{section}]: "
                f"baseline {base_ms[network]['ratio']:.2f}x, "
                f"current {cur_ms[network]['ratio']:.2f}x"
            )
        # warm_start ratios are episode counts over a fixed budget —
        # deterministic, machine-independent — so no noise floor: any
        # growth past the threshold is a real transfer regression.
        floor = 0.0 if section == "warm_start" else args.min_seconds
        failures += check_ratios(
            base_ms, cur_ms, args.threshold, floor, section
        )

    if failures:
        print("bench-regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    count = len(compared)
    print(
        f"bench-regression gate passed: {count} network(s) and "
        f"{ratio_count} amortization ratio(s) within {args.threshold}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
