#!/usr/bin/env python
"""Fail CI when the search benchmark regresses against the committed baseline.

Compares the freshly generated ``BENCH_search.json`` against the
baseline committed in the repository (snapshotted before the bench
runs) and exits non-zero if any ``search_wall_clock_s`` entry got more
than ``--threshold`` times slower.  Entries measured below
``--min-seconds`` on both sides are ignored: at sub-50ms scales shared
CI runners produce ratios that say more about the neighbor's workload
than about this commit.

Usage (mirrors the CI step)::

    python scripts/check_bench_regression.py \
        --baseline BENCH_baseline.json --current BENCH_search.json

Dry-run the gate locally by injecting a slowdown into a copy of the
artifact (doubling every wall clock must exit 1)::

    python scripts/check_bench_regression.py \
        --baseline BENCH_search.json --current /tmp/slowed.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 1.5
DEFAULT_MIN_SECONDS = 0.05


def load_wall_clocks(path: Path) -> dict[str, float]:
    """The ``search_wall_clock_s`` mapping of one bench artifact."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read bench artifact {path}: {error}")
    clocks = payload.get("search_wall_clock_s")
    if not isinstance(clocks, dict) or not clocks:
        raise SystemExit(f"{path} has no search_wall_clock_s entries")
    return {str(key): float(value) for key, value in clocks.items()}


def check(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
    min_seconds: float,
) -> list[str]:
    """Human-readable regression lines (empty means the gate passes)."""
    failures = []
    for network in sorted(set(baseline) & set(current)):
        base = baseline[network]
        now = current[network]
        if base < min_seconds and now < min_seconds:
            continue
        ratio = now / base if base > 0 else float("inf")
        if ratio > threshold:
            detail = f"{base:.3f}s -> {now:.3f}s ({ratio:.2f}x > {threshold}x)"
            failures.append(f"{network}: {detail}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_baseline.json"),
        help="bench artifact of the previous revision (committed baseline)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_search.json"),
        help="bench artifact of this revision",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fail when current/baseline exceeds this factor",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="skip entries below this wall clock on both sides",
    )
    args = parser.parse_args(argv)

    baseline = load_wall_clocks(args.baseline)
    current = load_wall_clocks(args.current)
    compared = sorted(set(baseline) & set(current))
    if not compared:
        print("bench-regression gate: no overlapping networks to compare")
        return 1
    for network in compared:
        base = baseline[network]
        now = current[network]
        ratio = now / base if base > 0 else float("inf")
        print(f"  {network}: baseline {base:.3f}s, current {now:.3f}s ({ratio:.2f}x)")
    failures = check(baseline, current, args.threshold, args.min_seconds)
    if failures:
        print("bench-regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    count = len(compared)
    print(f"bench-regression gate passed: {count} network(s) within {args.threshold}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
