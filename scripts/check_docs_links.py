#!/usr/bin/env python
"""Fail CI when docs contain dead relative links or dangling anchors.

Scans README.md and every ``docs/*.md`` file for markdown links and
images.  For each **relative** target (no URL scheme, not mailto) the
linked file must exist on disk, and when the link carries a
``#fragment`` the target file must contain a heading that slugifies to
that fragment (GitHub's anchor rules: lowercase, punctuation stripped,
spaces to dashes).  External http(s) links are not fetched — CI must
not depend on the network — but their syntax is still validated.

Usage::

    python scripts/check_docs_links.py            # README.md + docs/
    python scripts/check_docs_links.py FILE...    # explicit file set

Exits non-zero listing every dead link as ``file:line: message``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks (links inside are examples, not navigation).
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def default_files() -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (close enough:
    inline code/links stripped, lowercase, punctuation removed,
    spaces dashed)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes."""
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def links_of(path: Path) -> list[tuple[int, str]]:
    """Every (line_number, target) link in a markdown file."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((number, match.group(1)))
    return links


def check_file(path: Path) -> list[str]:
    """Human-readable problems with one file's links (empty = clean)."""
    problems: list[str] = []
    try:
        display = path.relative_to(REPO_ROOT)
    except ValueError:  # explicit file outside the repo
        display = path
    for number, target in links_of(path):
        where = f"{display}:{number}"
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # absolute URL (http:, https:, mailto:) — not checked
        if target.startswith("#"):
            fragment = target[1:]
            if fragment not in headings_of(path):
                problems.append(f"{where}: no heading for anchor {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{where}: dead relative link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in headings_of(resolved):
                problems.append(
                    f"{where}: {file_part} has no heading for "
                    f"anchor #{fragment}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(arg).resolve() for arg in argv] or default_files()
    problems: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        checked += 1
        problems.extend(check_file(path))
    if problems:
        print("docs link check FAILED:")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"docs link check passed: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
