#!/usr/bin/env python
"""End-to-end smoke of the campaign service against live processes.

The acceptance script for the service layer (CI runs it):

1. start ``python -m repro serve`` as a real subprocess (OS-chosen
   port, one worker, sqlite store + LUT cache in a temp directory);
2. ``repro submit --network lenet5 ... --wait --watch`` against it —
   the submission must return a job id, the progress stream must yield
   monotone best-so-far episode checkpoints, and the final record must
   be ``done``;
3. reproduce the same scenario locally via ``repro profile`` +
   ``repro search`` and assert the service's ``best_ms`` is
   **bitwise-equal** (same deterministic LUT, same search config);
4. re-submit (must be an instant store cache hit) and query
   ``/results``;
5. stop the service with ``POST /shutdown`` and check a clean exit.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--episodes N]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# The script imports repro.runtime.client itself; make it runnable
# without an exported PYTHONPATH too.
sys.path.insert(0, str(REPO_ROOT / "src"))

NETWORK = "lenet5"
PLATFORM = "jetson_tx2"
MODE = "gpgpu"


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _repro(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result


def main() -> int:
    """Run the smoke; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=600)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmp_path = Path(tmp)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--store", str(tmp_path / "results.sqlite"),
                "--cache-dir", str(tmp_path / "luts"),
            ],  # fmt: skip
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
        )
        try:
            banner = server.stdout.readline()
            assert "serving on http://" in banner, banner
            url = banner.split()[2]
            print(f"[1/5] service up at {url}")

            record_path = tmp_path / "record.json"
            submit = _repro(
                "submit", "--url", url,
                "--network", NETWORK, "--platform", PLATFORM, "--mode", MODE,
                "--episodes", str(args.episodes),
                "--wait", "--watch", "--out", str(record_path),
            )  # fmt: skip
            first_line = submit.stdout.splitlines()[0]
            job_id = first_line.split()[0]
            assert job_id.startswith("job-"), first_line
            checkpoints = [
                line
                for line in submit.stdout.splitlines()
                if " episode " in line
            ]
            assert checkpoints, f"no progress checkpoints:\n{submit.stdout}"
            episodes = [int(c.split(" episode ")[1].split(":")[0]) for c in checkpoints]
            assert episodes == sorted(set(episodes)), "checkpoints out of order"
            assert episodes[0] == 0 and episodes[-1] == args.episodes - 1
            record = json.loads(record_path.read_text())
            assert record["state"] == "done", record
            served_best = record["best_ms"]
            print(
                f"[2/5] {job_id} done: best_ms={served_best!r}, "
                f"{len(checkpoints)} monotone checkpoints"
            )

            lut_path = tmp_path / "lut.json"
            sched_path = tmp_path / "sched.json"
            _repro(
                "profile", "--network", NETWORK, "--platform", PLATFORM,
                "--mode", MODE, "--out", str(lut_path),
            )  # fmt: skip
            _repro(
                "search", "--lut", str(lut_path),
                "--episodes", str(args.episodes), "--out", str(sched_path),
            )  # fmt: skip
            local_best = json.loads(sched_path.read_text())["total_ms"]
            assert served_best == local_best, (
                f"service best_ms {served_best!r} != local repro search "
                f"{local_best!r} (must be bitwise-equal)"
            )
            print(f"[3/5] bitwise-equal to local repro search: {local_best!r}")

            again = _repro(
                "submit", "--url", url,
                "--network", NETWORK, "--platform", PLATFORM, "--mode", MODE,
                "--episodes", str(args.episodes), "--wait",
            )  # fmt: skip
            assert "from_store=True" in again.stdout, again.stdout
            from repro.runtime.client import ServiceClient

            client = ServiceClient(url, timeout=30)
            rows = client.results(network=NETWORK, mode=MODE)
            assert len(rows) == 1 and rows[0]["best_ms"] == local_best
            print("[4/5] resubmission was a store cache hit; /results agrees")

            client.shutdown()
            code = server.wait(timeout=60)
            assert code == 0, f"serve exited {code}"
            print("[5/5] graceful shutdown, exit 0")
            print("serve smoke OK")
            return 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(10)
                print(server.stdout.read())


if __name__ == "__main__":
    sys.exit(main())
