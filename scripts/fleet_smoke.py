#!/usr/bin/env python
"""End-to-end smoke of the worker fleet against live processes.

The acceptance script for the fleet layer (CI runs it):

1. start ``python -m repro serve`` with **zero local workers** (the
   queue drains only through the worker-pull protocol) and a short
   lease TTL;
2. start two ``python -m repro work`` subprocesses against it;
3. submit jobs, wait until one is leased, then **SIGKILL** the worker
   owning the lease mid-run — the service must expire the lease after
   the TTL and requeue the job;
4. assert every job completes anyway (the surviving worker picks up
   the requeued job) with a ``best_ms`` **bitwise-equal** to the same
   scenario run locally via ``repro search`` — remote execution must
   be indistinguishable from local;
5. scrape ``GET /metrics`` and assert the Prometheus exposition
   parses, records the expired lease and the requeue, and counts the
   completions; then shut down gracefully.

With ``--lease-batch N`` (N > 1) the smoke exercises the batched data
plane instead: the jobs are queued *before* the workers start, so the
first worker to poll claims all of them under ONE multi-job lease —
the SIGKILL then proves that every job of the batch is requeued
exactly once and still completes bitwise-equal on the survivor, and
the metrics scrape asserts the lease-batch histogram actually saw a
multi-job lease.

Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py
    PYTHONPATH=src python scripts/fleet_smoke.py --lease-batch 3
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# The script imports repro.runtime.client itself; make it runnable
# without an exported PYTHONPATH too.
sys.path.insert(0, str(REPO_ROOT / "src"))

PLATFORM = "jetson_tx2"
MODE = "gpgpu"
LEASE_TTL_S = 2.0

#: The kill victim: a deliberately slow scenario (reference kernel,
#: large episode budget -> seconds of execution) so SIGKILL reliably
#: lands while the lease is held.  Backends are bit-identical, so
#: pinning "reference" costs nothing but wall clock.
SLOW_JOB = {
    "network": "mobilenet_v1",
    "platform": PLATFORM,
    "mode": MODE,
    "episodes": 20000,
    "seed": 0,
    "kernel": "reference",
}

#: A fast job riding along: normal fleet completion on the survivor.
#: Seed 0 like the slow job (distinct networks keep the jobs distinct):
#: the job seed also seeds LUT profiling, and the local `repro
#: profile` comparison below runs with its seed-0 default.
FAST_JOB = {
    "network": "lenet5",
    "platform": PLATFORM,
    "mode": MODE,
    "episodes": 600,
    "seed": 0,
}

#: A second fast job for batch mode, so the victim's single lease
#: covers three jobs (distinct from FAST_JOB via the episode budget).
EXTRA_JOB = {
    "network": "lenet5",
    "platform": PLATFORM,
    "mode": MODE,
    "episodes": 500,
    "seed": 0,
}


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _repro(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result


def _spawn_worker(
    url: str, name: str, log_path: Path, lease_batch: int = 1
) -> subprocess.Popen:
    log = open(log_path, "w")
    argv = [
        sys.executable,
        "-m",
        "repro",
        "work",
        "--server",
        url,
        "--name",
        name,
        "--poll",
        "0.1",
    ]
    if lease_batch > 1:
        argv += ["--lease-batch", str(lease_batch)]
    return subprocess.Popen(
        argv,
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )


def _wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out after {timeout_s}s waiting for {what}")


def main() -> int:
    """Run the smoke; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--lease-batch",
        type=int,
        default=1,
        help="jobs per lease for the fleet workers (N > 1 runs the "
        "batched-data-plane variant of the smoke)",
    )
    args = parser.parse_args()
    batch = max(1, args.lease_batch)

    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp:
        tmp_path = Path(tmp)
        serve_args = [
            "--port", "0",
            "--workers", "0",
            "--store", str(tmp_path / "results.sqlite"),
            "--cache-dir", str(tmp_path / "luts"),
            "--lease-ttl", str(LEASE_TTL_S),
            "--lease-check", "0.2",
            "--drain-timeout", "5",
        ]  # fmt: skip
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *serve_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
        )
        workers: dict[str, subprocess.Popen] = {}
        try:
            banner = server.stdout.readline()
            assert "serving on http://" in banner, banner
            url = banner.split()[2]
            print(f"[1/5] service up at {url} (workers=0: fleet-only)")

            from repro.runtime.client import ServiceClient
            from repro.runtime.metrics import parse_samples

            client = ServiceClient(url, timeout=30)
            if batch > 1:
                # Batch mode: queue every job *before* any worker
                # exists, so the first worker to poll claims all of
                # them under one multi-job lease (slow job first —
                # the SIGKILL lands while it runs).
                slow = client.submit(SLOW_JOB)[0]
                fast = client.submit(FAST_JOB)[0]
                submitted = [slow, fast, client.submit(EXTRA_JOB)[0]]
            workers["a"] = _spawn_worker(url, "smoke-a", tmp_path / "a.log", batch)
            workers["b"] = _spawn_worker(url, "smoke-b", tmp_path / "b.log", batch)
            registered = _wait_for(
                lambda: len(client.workers()["workers"]) == 2 or None,
                30,
                "both workers to register",
            )
            assert registered
            print(f"[2/5] two fleet workers registered (lease batch {batch})")

            if batch == 1:
                # Two scenarios: both must complete even though one
                # worker is about to be killed mid-lease.
                slow = client.submit(SLOW_JOB)[0]
                fast = client.submit(FAST_JOB)[0]
                submitted = [slow, fast]

            # Kill whoever holds the *slow* job's lease: its seconds
            # of runtime guarantee the SIGKILL lands mid-lease.
            def _slow_lease():
                for lease in client.workers()["leases"]:
                    covered = lease.get("job_ids", [lease["job_id"]])
                    if slow["id"] in covered:
                        return lease
                return None

            lease = _wait_for(_slow_lease, 60, "a worker to lease the slow job")
            if batch > 1:
                assert len(lease["job_ids"]) == len(submitted), (
                    "batch mode: the victim's lease must cover every "
                    f"queued job, got {lease['job_ids']}"
                )
            victim_worker_id = lease["worker"]
            victim_lease_id = lease["lease_id"]
            name_of = {i["id"]: i["name"] for i in client.workers()["workers"]}
            victim_name = name_of[victim_worker_id]
            victim = workers["a"] if victim_name.endswith("-a") else workers["b"]
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            print(
                f"[3/5] SIGKILLed {victim_name} ({victim_worker_id}) "
                f"holding {victim_lease_id}"
            )

            # The lease must expire (no more heartbeats) and the job
            # must be requeued — visible as a fresh lease attempt and,
            # ultimately, a completed job.
            def _victim_lease_gone():
                live = {lease["lease_id"] for lease in client.workers()["leases"]}
                return None if victim_lease_id in live else True

            _wait_for(
                _victim_lease_gone,
                LEASE_TTL_S * 10,
                "the victim's lease to expire",
            )

            finals = [client.wait(record["id"], timeout=600) for record in submitted]
            for final in finals:
                assert final["state"] == "done", final
            slow_final = finals[0]
            assert slow_final["attempts"] > 1, (
                "the slow job was not re-leased after the kill: "
                f"attempts={slow_final['attempts']}"
            )
            if batch > 1:
                # Every job of the killed batch must have been
                # requeued exactly once — no sibling lost, none
                # double-requeued.
                for final in finals:
                    assert final["attempts"] == 2, (
                        f"{final['job']['network']}: expected exactly one "
                        f"requeue, attempts={final['attempts']}"
                    )
            print(
                "[4/5] all jobs done; slow job re-leased after expiry "
                f"(attempts: {[f['attempts'] for f in finals]})"
            )

            # Bitwise equality with local `repro search`, per job.
            for final in finals:
                job = final["job"]
                lut_path = tmp_path / f"lut-{job['network']}.json"
                if not lut_path.exists():
                    _repro(
                        "profile",
                        "--network", job["network"],
                        "--platform", PLATFORM,
                        "--mode", MODE,
                        "--out", str(lut_path),
                    )  # fmt: skip
                sched_path = tmp_path / f"sched-{job['network']}.json"
                _repro(
                    "search",
                    "--lut", str(lut_path),
                    "--episodes", str(job["episodes"]),
                    "--seed", str(job["seed"]),
                    "--kernel", job["kernel"],
                    "--out", str(sched_path),
                )  # fmt: skip
                local_best = json.loads(sched_path.read_text())["total_ms"]
                assert final["best_ms"] == local_best, (
                    f"{job['network']}: fleet best_ms "
                    f"{final['best_ms']!r} != local repro search "
                    f"{local_best!r} (must be bitwise-equal)"
                )
            print("[5/5] fleet results bitwise-equal to local repro search")

            samples = parse_samples(client.metrics())
            completed = sum(samples.get("repro_jobs_completed_total", {}).values())
            expired = sum(samples.get("repro_leases_expired_total", {}).values())
            requeues = sum(samples.get("repro_jobs_requeued_total", {}).values())
            assert completed >= 2, samples.get("repro_jobs_completed_total")
            assert expired >= 1, samples.get("repro_leases_expired_total")
            assert requeues >= 1, samples.get("repro_jobs_requeued_total")
            assert samples["repro_workers_registered"][()] >= 2.0
            if batch > 1:
                batch_sum = samples["repro_lease_batch_jobs_sum"][()]
                batch_count = samples["repro_lease_batch_jobs_count"][()]
                assert batch_sum > batch_count, (
                    "batch mode: the lease-batch histogram never saw a "
                    f"multi-job lease (sum={batch_sum:g}, "
                    f"count={batch_count:g})"
                )
            print(
                f"metrics ok: completed={completed:g} expired={expired:g} "
                f"requeued={requeues:g}"
            )

            client.shutdown()
            code = server.wait(timeout=60)
            assert code == 0, f"serve exited {code}"
            survivor = [p for p in workers.values() if p.poll() is None]
            for proc in survivor:
                # Workers exit on their own once the service is gone.
                proc.wait(timeout=30)
            print("graceful shutdown, exit 0")
            print("fleet smoke OK")
            return 0
        finally:
            for proc in workers.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(10)
            if server.poll() is None:
                server.kill()
                server.wait(10)
                print(server.stdout.read())
            for log_name in ("a.log", "b.log"):
                log_path = tmp_path / log_name
                if log_path.exists():
                    print(f"--- worker {log_name} ---")
                    print(log_path.read_text())


if __name__ == "__main__":
    sys.exit(main())
