#!/usr/bin/env python
"""End-to-end smoke of anytime search against a live service.

The acceptance script for the anytime subsystem (CI runs it):

1. start ``python -m repro serve`` with one local worker and
   ``--checkpoint-every`` enabled;
2. submit a deliberately long scenario and read its SSE stream until a
   live ``progress`` event arrives — proof the event came from an
   in-loop checkpoint while the job was still *running*;
3. ``DELETE`` the running job — the service must answer 202, preempt
   the worker at the next episode boundary, persist its checkpoint
   into the result store and land the record ``cancelled``;
4. resubmit the same scenario with ``"resume": true`` — the job must
   finish from the checkpoint, and its ``best_ms``/``curve_ms`` must
   be **bitwise-equal** to the same scenario run uninterrupted via
   ``repro search`` — preemption must cost wall clock, never bits;
5. scrape ``GET /metrics`` and assert the preemption, the resume and
   the checkpoint writes were counted, and that completion deleted
   the checkpoint row; then shut down gracefully.

Usage::

    PYTHONPATH=src python scripts/anytime_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# The script imports repro.runtime.client itself; make it runnable
# without an exported PYTHONPATH too.
sys.path.insert(0, str(REPO_ROOT / "src"))

PLATFORM = "jetson_tx2"
MODE = "gpgpu"
#: Capture an in-episode checkpoint every N episodes.
EVERY = 100

#: The preemption victim: a long scenario (reference kernel episode
#: rate -> seconds of execution) so the DELETE reliably lands while
#: the search is mid-flight with checkpoints already spooled.
JOB = {
    "network": "fig1_toy",
    "platform": PLATFORM,
    "mode": MODE,
    "episodes": 20000,
    "seed": 0,
}


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _repro(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result


def _wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise SystemExit(f"timed out after {timeout_s}s waiting for {what}")


def main() -> int:
    """Run the smoke; returns the process exit code."""
    with tempfile.TemporaryDirectory(prefix="anytime-smoke-") as tmp:
        tmp_path = Path(tmp)
        serve_args = [
            "--port", "0",
            "--workers", "1",
            "--store", str(tmp_path / "results.sqlite"),
            "--cache-dir", str(tmp_path / "luts"),
            "--checkpoint-every", str(EVERY),
        ]  # fmt: skip
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *serve_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
        )
        try:
            banner = server.stdout.readline()
            assert "serving on http://" in banner, banner
            url = banner.split()[2]
            print(f"[1/5] service up at {url} (checkpoint every {EVERY})")

            from repro.runtime.client import ServiceClient
            from repro.runtime.metrics import parse_samples

            client = ServiceClient(url, timeout=60)
            record = client.submit(JOB)[0]

            # A live progress event must arrive while the job is still
            # running — emitted from an in-loop checkpoint, not from
            # the post-hoc curve replay of a finished search.
            first = None
            for event, data in client.stream_progress(record["id"]):
                if event == "progress":
                    first = data
                    state = client.job(record["id"])["state"]
                    break
            assert first is not None, "stream ended without a progress event"
            assert state == "running", f"progress arrived in state {state!r}"
            assert first["episode"] % EVERY == 0 and first["episode"] > 0
            print(
                f"[2/5] live progress at episode {first['episode']} "
                f"(best {first['best_ms']:.3f} ms) while running"
            )

            cancelled = client.cancel(record["id"])
            assert cancelled["preempting"] is True, cancelled
            final = _wait_for(
                lambda: (
                    client.job(record["id"])
                    if client.job(record["id"])["state"] == "cancelled"
                    else None
                ),
                60,
                "the preempted job to land cancelled",
            )
            assert "preempted at episode" in final["error"], final["error"]
            print(f"[3/5] DELETE preempted the running job ({final['error']})")

            resumed = client.submit({**JOB, "resume": True})[0]
            assert resumed["id"] != record["id"]
            done = client.wait(resumed["id"], timeout=600)
            assert done["state"] == "done", done
            print(
                f"[4/5] resumed job done: best_ms={done['best_ms']!r} "
                f"({done['wall_clock_s']:.2f}s)"
            )

            # Bitwise equality with an uninterrupted local run of the
            # same scenario via the CLI.
            lut_path = tmp_path / "lut.json"
            _repro(
                "profile",
                "--network", JOB["network"],
                "--platform", PLATFORM,
                "--mode", MODE,
                "--out", str(lut_path),
            )  # fmt: skip
            sched_path = tmp_path / "sched.json"
            _repro(
                "search",
                "--lut", str(lut_path),
                "--episodes", str(JOB["episodes"]),
                "--seed", str(JOB["seed"]),
                "--out", str(sched_path),
            )  # fmt: skip
            local_best = json.loads(sched_path.read_text())["total_ms"]
            assert done["best_ms"] == local_best, (
                f"preempt+resume best_ms {done['best_ms']!r} != local "
                f"repro search {local_best!r} (must be bitwise-equal)"
            )
            # The live progress event of the *preempted* run must agree
            # bitwise with the resumed run's full curve at that episode.
            curve = done["payload"]["curve_ms"]
            assert min(curve[: first["episode"]]) == first["best_ms"], (
                "resumed curve disagrees with the preempted run's live "
                f"progress at episode {first['episode']}"
            )
            print("[5/5] preempt+resume result bitwise-equal to local search")

            samples = parse_samples(client.metrics())
            written = samples["repro_checkpoints_written_total"][()]
            preempted = samples["repro_jobs_preempted_total"][()]
            resumed_n = samples["repro_jobs_resumed_total"][()]
            assert written >= 1, samples.get("repro_checkpoints_written_total")
            assert preempted == 1, samples.get("repro_jobs_preempted_total")
            assert resumed_n == 1, samples.get("repro_jobs_resumed_total")
            # Completion hygiene: the checkpoint row is gone from the
            # store once the resumed job finished.
            results = client.results(network=JOB["network"])
            assert len(results) == 1, results
            print(
                f"metrics ok: written={written:g} preempted={preempted:g} "
                f"resumed={resumed_n:g}"
            )

            client.shutdown()
            code = server.wait(timeout=60)
            assert code == 0, f"serve exited {code}"
            print("graceful shutdown, exit 0")
            print("anytime smoke OK")
            return 0
        finally:
            if server.poll() is None:
                server.kill()
                try:
                    server.wait(10)
                except subprocess.TimeoutExpired:
                    pass
                # Orphaned pool children of a killed server share its
                # stdout pipe: a blocking read() here would hang, so
                # drain whatever is already buffered and move on.
                os.set_blocking(server.stdout.fileno(), False)
                print(server.stdout.read() or "")


if __name__ == "__main__":
    sys.exit(main())
