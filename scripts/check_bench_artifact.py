#!/usr/bin/env python
"""Validate the schema of a freshly generated bench artifact.

The bench smoke writes ``BENCH_search.json``; this gate asserts the
artifact still carries everything downstream consumers rely on — the
regression gate (wall clocks, ratio sections), the uploaded artifact's
human readers (platform, kernel section) and the numba CI leg's proof
obligations (recorded speedups, a mega-batch run).  It replaces an
inline heredoc that used to live in ``.github/workflows/ci.yml``, so
the assertions are unit-testable (``tests/test_check_bench_artifact.py``)
instead of only failing in CI.

The same gate also understands the service data-plane artifact
(``BENCH_service.json``, written by ``bench_service_throughput.py``):
artifacts carrying ``"kind": "service_throughput"`` are dispatched to
:func:`check_service_artifact` automatically.

Usage (mirrors the CI steps)::

    python scripts/check_bench_artifact.py BENCH_search.json
    python scripts/check_bench_artifact.py BENCH_service.json

Exits non-zero with one line per violation; prints the artifact when
``--print`` is given (the CI step does, for the build log).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Oldest artifact schema the gate accepts (schema 4 added the kernel
#: section and the mega_batch ratios).
MIN_SCHEMA_VERSION = 4

#: Schema that introduced the ``warm_start`` section; older artifacts
#: are not required to carry it.
WARM_SCHEMA_VERSION = 5

#: Fraction of the cold episode budget a warm-started run may spend to
#: match the cold best (the warm-start subsystem's acceptance bar).
WARM_MAX_RATIO = 0.5

#: Networks the warm-start claim must cover, at minimum.
WARM_MIN_NETWORKS = 2

#: Prior kinds a warm-start entry may report.
KNOWN_PRIOR_KINDS = ("stored", "surrogate")

#: Kernel backends an artifact may legitimately report.
KNOWN_BACKENDS = ("numba", "reference")

#: Oldest service-throughput artifact schema the gate accepts.
SERVICE_MIN_SCHEMA_VERSION = 1

#: Modes every service-throughput artifact must have measured.
SERVICE_MODES = ("local", "fleet_legacy", "fleet_batched")


def _check_warm_entry(name: str, entry) -> list[str]:
    """Violations in one network row of the ``warm_start`` section."""
    if not isinstance(entry, dict):
        return [f"warm_start.{name} must be an object"]
    problems: list[str] = []
    if entry.get("kind") not in KNOWN_PRIOR_KINDS:
        problems.append(
            f"warm_start.{name}.kind {entry.get('kind')!r} not one of "
            f"{list(KNOWN_PRIOR_KINDS)}"
        )
    for field in ("cold_best_ms", "warm_best_ms"):
        if not isinstance(entry.get(field), (int, float)):
            problems.append(f"warm_start.{name}.{field} must be a number")
    for field in ("cold_episodes", "warm_episodes"):
        if not isinstance(entry.get(field), int) or entry.get(field, 0) < 1:
            problems.append(
                f"warm_start.{name}.{field} must be a positive int"
            )
    ratio = entry.get("ratio")
    if not isinstance(ratio, (int, float)) or not ratio <= WARM_MAX_RATIO:
        # The acceptance bar itself: a warm run that needed more than
        # half the cold budget (ratio > 0.5, including the inf a
        # never-matching run records) fails the artifact, not just the
        # bench assert — regenerating the artifact on a machine where
        # the bench was skipped must not launder the claim away.
        problems.append(
            f"warm_start.{name}.ratio must be a number <= "
            f"{WARM_MAX_RATIO}, got {ratio!r}"
        )
    cold = entry.get("cold_best_ms")
    warm = entry.get("warm_best_ms")
    if (
        isinstance(cold, (int, float))
        and isinstance(warm, (int, float))
        and warm > cold
    ):
        problems.append(
            f"warm_start.{name}: warm_best_ms {warm} worse than "
            f"cold_best_ms {cold}"
        )
    return problems


def check_artifact(payload: dict) -> list[str]:
    """Every schema violation in one parsed artifact (empty = valid)."""
    problems: list[str] = []
    if not payload.get("search_wall_clock_s"):
        problems.append("no wall clocks recorded (search_wall_clock_s)")
    if payload.get("schema_version", 0) < MIN_SCHEMA_VERSION:
        problems.append(
            f"bench schema too old: need >= {MIN_SCHEMA_VERSION}, got "
            f"{payload.get('schema_version', 0)}"
        )
    if not payload.get("platform"):
        problems.append("bench artifact missing platform")
    if "multi_seed" not in payload:
        problems.append("bench artifact missing multi_seed")
    if "mega_batch" not in payload:
        problems.append("bench artifact missing mega_batch")
    if not payload.get("episodes_per_s"):
        problems.append("no episode throughput recorded (episodes_per_s)")
    if payload.get("schema_version", 0) >= WARM_SCHEMA_VERSION:
        warm = payload.get("warm_start")
        if not isinstance(warm, dict):
            problems.append("bench artifact missing warm_start")
        elif len(warm) < WARM_MIN_NETWORKS:
            problems.append(
                f"warm_start must cover >= {WARM_MIN_NETWORKS} held-out "
                f"networks, got {len(warm)}"
            )
        else:
            for name in sorted(warm):
                problems += _check_warm_entry(name, warm[name])
    kernel = payload.get("kernel")
    if not isinstance(kernel, dict):
        problems.append("bench artifact missing kernel section")
        return problems
    if kernel.get("backend") not in KNOWN_BACKENDS:
        problems.append(
            f"unknown kernel backend {kernel.get('backend')!r} "
            f"(expected one of {list(KNOWN_BACKENDS)})"
        )
    if not isinstance(kernel.get("numba_available"), bool):
        problems.append("kernel.numba_available must be a bool")
    if not isinstance(kernel.get("speedup"), dict):
        problems.append("kernel.speedup must be a dict")
    if kernel.get("numba_available") is True:
        # The compiled-kernel CI leg exists to prove the numba paths;
        # an empty speedup table or a skipped mega-batch run means the
        # leg silently proved nothing.
        if not kernel.get("speedup"):
            problems.append("numba leg recorded no kernel speedups")
        if not payload.get("mega_batch"):
            problems.append("numba leg recorded no mega_batch run")
    return problems


def _check_service_mode(name: str, entry) -> list[str]:
    """Violations in one mode row of a service-throughput artifact."""
    if not isinstance(entry, dict):
        return [f"modes.{name} must be an object"]
    problems: list[str] = []
    for field in ("jobs_per_s", "wall_clock_s", "p50_latency_s", "p99_latency_s"):
        value = entry.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"modes.{name}.{field} must be a positive number")
    store = entry.get("store")
    if not isinstance(store, dict):
        problems.append(f"modes.{name} missing store flush stats")
    else:
        if not isinstance(store.get("wal"), bool):
            problems.append(f"modes.{name}.store.wal must be a bool")
        for field in ("flushes", "rows"):
            if not isinstance(store.get(field), int):
                problems.append(f"modes.{name}.store.{field} must be an int")
    return problems


def check_service_artifact(payload: dict) -> list[str]:
    """Every schema violation in one service-throughput artifact.

    Beyond field presence, this asserts the two fleet modes actually
    measured what their names claim (the legacy row on the
    one-job-per-lease, connection-per-request protocol; the batched
    row with multi-job leases over keep-alive connections) — a bench
    refactor that silently measured batched against batched would
    otherwise still produce a plausible-looking artifact.
    """
    problems: list[str] = []
    if payload.get("kind") != "service_throughput":
        problems.append(
            f"unexpected kind {payload.get('kind')!r} "
            "(expected 'service_throughput')"
        )
    if payload.get("schema_version", 0) < SERVICE_MIN_SCHEMA_VERSION:
        problems.append(
            f"service bench schema too old: need >= "
            f"{SERVICE_MIN_SCHEMA_VERSION}, got "
            f"{payload.get('schema_version', 0)}"
        )
    jobs = payload.get("jobs")
    if not isinstance(jobs, int) or jobs < 1:
        problems.append("service artifact missing job count (jobs)")
    modes = payload.get("modes")
    if not isinstance(modes, dict):
        problems.append("service artifact missing modes section")
        return problems
    for name in SERVICE_MODES:
        if name not in modes:
            problems.append(f"service artifact missing mode {name!r}")
        else:
            problems += _check_service_mode(name, modes[name])
    legacy = modes.get("fleet_legacy")
    if isinstance(legacy, dict):
        if legacy.get("lease_batch") != 1:
            problems.append("fleet_legacy must lease one job at a time")
        if legacy.get("keep_alive") is not False:
            problems.append("fleet_legacy must use a connection per request")
    batched = modes.get("fleet_batched")
    if isinstance(batched, dict):
        if not isinstance(batched.get("lease_batch"), int) or (
            batched.get("lease_batch", 0) < 2
        ):
            problems.append("fleet_batched must lease multi-job batches")
        if batched.get("keep_alive") is not True:
            problems.append("fleet_batched must reuse connections")
    speedup = payload.get("speedup")
    if not isinstance(speedup, dict) or not isinstance(
        speedup.get("fleet"), (int, float)
    ):
        problems.append("service artifact missing speedup.fleet")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifact",
        nargs="?",
        default="BENCH_search.json",
        help="bench artifact path (default: BENCH_search.json)",
    )
    parser.add_argument(
        "--print",
        dest="print_artifact",
        action="store_true",
        help="pretty-print the artifact before checking (for CI logs)",
    )
    args = parser.parse_args(argv)
    path = Path(args.artifact)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read bench artifact {path}: {error}")
        return 1
    if args.print_artifact:
        print(json.dumps(payload, indent=2))
    if payload.get("kind") == "service_throughput":
        problems = check_service_artifact(payload)
        floor = SERVICE_MIN_SCHEMA_VERSION
    else:
        problems = check_artifact(payload)
        floor = MIN_SCHEMA_VERSION
    for problem in problems:
        print(f"bench artifact: {problem}")
    if problems:
        return 1
    print(f"bench artifact {path} ok (schema >= {floor})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
