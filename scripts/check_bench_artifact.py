#!/usr/bin/env python
"""Validate the schema of a freshly generated bench artifact.

The bench smoke writes ``BENCH_search.json``; this gate asserts the
artifact still carries everything downstream consumers rely on — the
regression gate (wall clocks, ratio sections), the uploaded artifact's
human readers (platform, kernel section) and the numba CI leg's proof
obligations (recorded speedups, a mega-batch run).  It replaces an
inline heredoc that used to live in ``.github/workflows/ci.yml``, so
the assertions are unit-testable (``tests/test_check_bench_artifact.py``)
instead of only failing in CI.

Usage (mirrors the CI step)::

    python scripts/check_bench_artifact.py BENCH_search.json

Exits non-zero with one line per violation; prints the artifact when
``--print`` is given (the CI step does, for the build log).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Oldest artifact schema the gate accepts (schema 4 added the kernel
#: section and the mega_batch ratios).
MIN_SCHEMA_VERSION = 4

#: Kernel backends an artifact may legitimately report.
KNOWN_BACKENDS = ("numba", "reference")


def check_artifact(payload: dict) -> list[str]:
    """Every schema violation in one parsed artifact (empty = valid)."""
    problems: list[str] = []
    if not payload.get("search_wall_clock_s"):
        problems.append("no wall clocks recorded (search_wall_clock_s)")
    if payload.get("schema_version", 0) < MIN_SCHEMA_VERSION:
        problems.append(
            f"bench schema too old: need >= {MIN_SCHEMA_VERSION}, got "
            f"{payload.get('schema_version', 0)}"
        )
    if not payload.get("platform"):
        problems.append("bench artifact missing platform")
    if "multi_seed" not in payload:
        problems.append("bench artifact missing multi_seed")
    if "mega_batch" not in payload:
        problems.append("bench artifact missing mega_batch")
    if not payload.get("episodes_per_s"):
        problems.append("no episode throughput recorded (episodes_per_s)")
    kernel = payload.get("kernel")
    if not isinstance(kernel, dict):
        problems.append("bench artifact missing kernel section")
        return problems
    if kernel.get("backend") not in KNOWN_BACKENDS:
        problems.append(
            f"unknown kernel backend {kernel.get('backend')!r} "
            f"(expected one of {list(KNOWN_BACKENDS)})"
        )
    if not isinstance(kernel.get("numba_available"), bool):
        problems.append("kernel.numba_available must be a bool")
    if not isinstance(kernel.get("speedup"), dict):
        problems.append("kernel.speedup must be a dict")
    if kernel.get("numba_available") is True:
        # The compiled-kernel CI leg exists to prove the numba paths;
        # an empty speedup table or a skipped mega-batch run means the
        # leg silently proved nothing.
        if not kernel.get("speedup"):
            problems.append("numba leg recorded no kernel speedups")
        if not payload.get("mega_batch"):
            problems.append("numba leg recorded no mega_batch run")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifact",
        nargs="?",
        default="BENCH_search.json",
        help="bench artifact path (default: BENCH_search.json)",
    )
    parser.add_argument(
        "--print",
        dest="print_artifact",
        action="store_true",
        help="pretty-print the artifact before checking (for CI logs)",
    )
    args = parser.parse_args(argv)
    path = Path(args.artifact)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read bench artifact {path}: {error}")
        return 1
    if args.print_artifact:
        print(json.dumps(payload, indent=2))
    problems = check_artifact(payload)
    for problem in problems:
        print(f"bench artifact: {problem}")
    if problems:
        return 1
    print(f"bench artifact {path} ok (schema >= {MIN_SCHEMA_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
