#!/usr/bin/env python
"""Two-host smoke of the tiered LUT shard cache against live processes.

The acceptance script for the fleet cache (CI runs it):

1. start ``python -m repro serve`` (host A) with a ``--cache-dir`` —
   the instance is both a search service and the fleet's shard server;
2. ``repro submit`` a scenario: host A's worker profiles the LUT into
   its local tier (the file must land in the sharded layout);
3. run ``repro campaign`` as host B — a separate process with an
   *empty* local tier chained to host A via ``--cache-remote`` — and
   assert the job reports ``lut_from_cache: true`` (zero profiling
   passes on host B) with a ``best_ms`` **bitwise-equal** to host A's;
4. check the fill-forward: host B's local tier now holds the entry,
   and ``repro lut-cache stats`` accounts for it;
5. stop the service gracefully.

Usage::

    PYTHONPATH=src python scripts/lutcache_smoke.py [--episodes N]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

NETWORK = "lenet5"
PLATFORM = "jetson_tx2"
MODE = "gpgpu"


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _repro(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result


def main() -> int:
    """Run the smoke; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=600)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="lutcache-smoke-") as tmp:
        tmp_path = Path(tmp)
        host_a = tmp_path / "hostA-luts"
        host_b = tmp_path / "hostB-luts"
        serve_args = [
            "--port", "0",
            "--workers", "1",
            "--store", str(tmp_path / "results.sqlite"),
            "--cache-dir", str(host_a),
        ]  # fmt: skip
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *serve_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
        )
        try:
            banner = server.stdout.readline()
            assert "serving on http://" in banner, banner
            url = banner.split()[2]
            print(f"[1/5] host A (serve + shard server) up at {url}")

            record_path = tmp_path / "record.json"
            _repro(
                "submit",
                "--url", url,
                "--network", NETWORK,
                "--platform", PLATFORM,
                "--mode", MODE,
                "--episodes", str(args.episodes),
                "--wait",
                "--out", str(record_path),
            )  # fmt: skip
            record = json.loads(record_path.read_text())
            assert record["state"] == "done", record
            assert not record["lut_from_cache"], (
                "host A's first job should have profiled"
            )
            shard = host_a / PLATFORM / NETWORK
            entries = [p.name for p in shard.glob("*.json") if p.name != "index.json"]
            assert entries, f"no shard entry in {shard}"
            print(
                f"[2/5] host A profiled into its tier: "
                f"{PLATFORM}/{NETWORK}/{entries[0]}"
            )

            results_path = tmp_path / "campaign.json"
            campaign = _repro(
                "campaign",
                "--networks", NETWORK,
                "--platforms", PLATFORM,
                "--modes", MODE,
                "--episodes", str(args.episodes),
                "--kind", "search",
                "--cache-dir", str(host_b),
                "--cache-remote", url,
                "--out", str(results_path),
            )  # fmt: skip
            assert "1 LUT cache hit(s)" in campaign.stdout, campaign.stdout
            payload = json.loads(results_path.read_text())
            assert payload[0]["lut_from_cache"] is True, payload[0]
            served_best = record["best_ms"]
            campaign_best = payload[0]["result"]["best_ms"]
            assert campaign_best == served_best, (
                f"host B best_ms {campaign_best!r} != host A "
                f"{served_best!r} (must be bitwise-equal)"
            )
            print(
                f"[3/5] host B hit the remote shard, zero profiling "
                f"passes; best_ms bitwise-equal: {campaign_best!r}"
            )

            filled = [
                p.name
                for p in (host_b / PLATFORM / NETWORK).glob("*.json")
                if p.name != "index.json"
            ]
            assert filled, "remote hit was not filled forward into host B's tier"
            stats = _repro("lut-cache", "stats", "--cache-dir", str(host_b))
            assert f"{PLATFORM}/{NETWORK}" in stats.stdout, stats.stdout
            print("[4/5] fill-forward landed; lut-cache stats agrees")

            from repro.runtime.client import ServiceClient

            client = ServiceClient(url, timeout=30)
            index = client.lut_index()
            assert len(index) == 1 and index[0]["network"] == NETWORK
            client.shutdown()
            code = server.wait(timeout=60)
            assert code == 0, f"serve exited {code}"
            print("[5/5] graceful shutdown, exit 0")
            print("lutcache smoke OK")
            return 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(10)
                print(server.stdout.read())


if __name__ == "__main__":
    sys.exit(main())
