"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable installs; this shim keeps the legacy ``setup.py develop`` path
working offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
